/// Tests of the corpus TSV loaders (src/data/corpus_io.h): lossless
/// round-trip including temporal labels and escaped text, legacy-format
/// compatibility, and line-numbered diagnostics for malformed input.

#include "src/data/corpus_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/data/synthetic.h"

namespace triclust {
namespace {

Corpus RichCorpus() {
  Corpus c;
  const size_t alice = c.AddUser("alice", Sentiment::kPositive);
  const size_t bob = c.AddUser("bob", Sentiment::kNegative);
  c.AddUser("carol");  // unlabeled, never tweets
  c.AddTweet(alice, 0, "yes on 37", Sentiment::kPositive);
  c.AddTweet(bob, 1, "no on 37", Sentiment::kNegative);
  c.AddTweet(alice, 2, "tab\there newline\nthere backslash\\done",
             Sentiment::kNeutral);
  c.AddTweet(bob, 2, "yes on 37", Sentiment::kPositive, /*retweet_of=*/0);
  c.SetUserSentimentAt(alice, 1, Sentiment::kNegative);
  c.SetUserSentimentAt(bob, 2, Sentiment::kPositive);
  return c;
}

void ExpectSameCorpus(const Corpus& got, const Corpus& expected) {
  ASSERT_EQ(got.num_users(), expected.num_users());
  ASSERT_EQ(got.num_tweets(), expected.num_tweets());
  for (size_t u = 0; u < expected.num_users(); ++u) {
    EXPECT_EQ(got.user(u).handle, expected.user(u).handle);
    EXPECT_EQ(got.user(u).label, expected.user(u).label);
  }
  for (size_t i = 0; i < expected.num_tweets(); ++i) {
    EXPECT_EQ(got.tweet(i).user, expected.tweet(i).user);
    EXPECT_EQ(got.tweet(i).day, expected.tweet(i).day);
    EXPECT_EQ(got.tweet(i).text, expected.tweet(i).text);
    EXPECT_EQ(got.tweet(i).label, expected.tweet(i).label);
    EXPECT_EQ(got.tweet(i).retweet_of, expected.tweet(i).retweet_of);
  }
  EXPECT_EQ(got.HasTemporalUserLabels(), expected.HasTemporalUserLabels());
  for (size_t u = 0; u < expected.num_users(); ++u) {
    for (int day = 0; day < 4; ++day) {
      EXPECT_EQ(got.ExplicitUserSentimentAt(u, day),
                expected.ExplicitUserSentimentAt(u, day))
          << "user " << u << " day " << day;
    }
  }
}

TEST(CorpusIoTest, StreamRoundTripIsLossless) {
  const Corpus original = RichCorpus();
  std::ostringstream out;
  ASSERT_TRUE(WriteTsv(original, &out).ok());
  std::istringstream in(out.str());
  auto loaded = ReadTsv(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameCorpus(loaded.value(), original);
}

TEST(CorpusIoTest, FileRoundTripIsLossless) {
  const Corpus original = RichCorpus();
  const std::string path = ::testing::TempDir() + "/corpus_io_roundtrip.tsv";
  ASSERT_TRUE(WriteTsv(original, path).ok());
  auto loaded = ReadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameCorpus(loaded.value(), original);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, SyntheticCorpusRoundTrips) {
  // The generator produces temporal labels, retweets, and emoticon tokens —
  // the full feature surface of the format on a realistic corpus.
  SyntheticConfig config;
  config.num_users = 40;
  config.num_days = 5;
  config.base_tweets_per_day = 40.0;
  config.burst_days = {};
  const Corpus original = GenerateSynthetic(config).corpus;
  ASSERT_TRUE(original.HasTemporalUserLabels());

  std::ostringstream out;
  ASSERT_TRUE(WriteTsv(original, &out).ok());
  std::istringstream in(out.str());
  auto loaded = ReadTsv(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameCorpus(loaded.value(), original);
}

TEST(CorpusIoTest, EscapingRoundTripsEveryControlCharacter) {
  const std::string text = "a\tb\nc\rd\\e\\tf";
  EXPECT_EQ(UnescapeTsvField(EscapeTsvField(text)), text);
  // Escaped form is tab- and newline-free (one record per line holds).
  const std::string escaped = EscapeTsvField(text);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  // Unknown escapes pass through so legacy raw backslashes survive.
  EXPECT_EQ(UnescapeTsvField("legacy \\x path"), "legacy \\x path");
}

TEST(CorpusIoTest, ReadsLegacyIntegerLabelFormat) {
  // The pre-corpus_io writer: "#users" banner, integer labels, no D rows.
  const std::string legacy =
      "#users\t2\n"
      "U\t0\talice\t0\n"
      "U\t1\tbob\t-1\n"
      "T\t0\t0\t0\t0\t-1\thello world\n"
      "T\t1\t1\t2\t1\t0\thello again\n";
  std::istringstream in(legacy);
  auto loaded = ReadTsv(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Corpus& c = loaded.value();
  EXPECT_EQ(c.user(0).label, Sentiment::kPositive);
  EXPECT_EQ(c.user(1).label, Sentiment::kUnlabeled);
  EXPECT_EQ(c.tweet(1).label, Sentiment::kNegative);
  EXPECT_EQ(c.tweet(1).retweet_of, 0);
  EXPECT_FALSE(c.HasTemporalUserLabels());
}

TEST(CorpusIoTest, LegacyBannerDisablesUnescaping) {
  // The legacy writer never escaped, so a literal backslash-t in its text
  // is two bytes of text, not a tab; the "#users" banner must switch the
  // reader to raw fields. Without the banner the same bytes decode.
  const std::string body =
      "U\t0\talice\t0\n"
      "T\t0\t0\t0\t0\t-1\tsaved to C:\\temp today\n";
  {
    std::istringstream in("#users\t1\n" + body);
    auto loaded = ReadTsv(&in);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().tweet(0).text, "saved to C:\\temp today");
  }
  {
    std::istringstream in(body);
    auto loaded = ReadTsv(&in);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().tweet(0).text, "saved to C:\temp today");
  }
  {
    // The banner only counts on line 1: a stray "#users" comment later in
    // a new-format file must not disable unescaping mid-stream.
    std::istringstream in("# new format\n#users\t1\n" + body);
    auto loaded = ReadTsv(&in);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().tweet(0).text, "saved to C:\temp today");
  }
  {
    // Legacy mode is byte-exact like the old loader: a trailing raw CR in
    // legacy text is content, not a CRLF artifact, and must survive.
    std::istringstream in(
        "#users\t1\n"
        "U\t0\talice\t0\n"
        "T\t0\t0\t0\t0\t-1\ttrailing cr\r\n");
    auto loaded = ReadTsv(&in);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().tweet(0).text, "trailing cr\r");
  }
}

TEST(CorpusIoTest, AcceptsCrlfLineEndings) {
  // Externally-prepared TSVs often arrive with CRLF endings; the trailing
  // CR must not corrupt the last field (text on T rows, label on U rows).
  const std::string crlf =
      "U\t0\talice\tpos\r\n"
      "T\t0\t0\t0\tpos\t-1\thello world\r\n";
  std::istringstream in(crlf);
  auto loaded = ReadTsv(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().user(0).label, Sentiment::kPositive);
  EXPECT_EQ(loaded.value().tweet(0).text, "hello world");
  // A real CR in text still round-trips via its escape, CRLF or not.
  Corpus with_cr;
  with_cr.AddTweet(with_cr.AddUser("u"), 0, "line\rwith cr");
  std::ostringstream out;
  ASSERT_TRUE(WriteTsv(with_cr, &out).ok());
  std::istringstream back(out.str());
  auto reloaded = ReadTsv(&back);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().tweet(0).text, "line\rwith cr");
}

TEST(CorpusIoTest, WarnsButAcceptsLargeEmptyDayPrefix) {
  // Absolute-epoch-style day numbers pass range validation; the reader
  // must still accept them (they are formally valid) — the warning path
  // is exercised here, the parse result is what we pin.
  const std::string contents =
      "U\t0\talice\tpos\n"
      "T\t0\t0\t20600\tpos\t-1\thello from epoch land\n";
  std::istringstream in(contents);
  auto loaded = ReadTsv(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().tweet(0).day, 20600);
  EXPECT_EQ(loaded.value().num_days(), 20601);

  // Epoch-style days on D rows alone take the same warn-but-accept path.
  const std::string d_only =
      "U\t0\talice\tpos\n"
      "D\t0\t20600\tneg\n"
      "T\t0\t0\t0\tpos\t-1\thello\n";
  std::istringstream d_in(d_only);
  auto d_loaded = ReadTsv(&d_in);
  ASSERT_TRUE(d_loaded.ok()) << d_loaded.status().ToString();
  EXPECT_EQ(d_loaded.value().ExplicitUserSentimentAt(0, 20600),
            Sentiment::kNegative);
}

// --- diagnostics -------------------------------------------------------------

Status ParseFailure(const std::string& contents) {
  std::istringstream in(contents);
  const auto result = ReadTsv(&in, "test.tsv");
  EXPECT_FALSE(result.ok()) << "expected a parse failure";
  return result.ok() ? Status::OK() : result.status();
}

TEST(CorpusIoTest, RejectsBadColumnCountWithLineNumber) {
  const Status status =
      ParseFailure("U\t0\talice\tpos\nT\t0\t0\t0\tpos\t-1\n");
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("test.tsv:2:"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("7 fields"), std::string::npos)
      << status.message();
}

TEST(CorpusIoTest, RejectsDanglingRetweet) {
  // retweet_of must point at an *earlier* tweet: forward and self
  // references are dangling at the time the row is read.
  const Status forward = ParseFailure(
      "U\t0\talice\tpos\n"
      "T\t0\t0\t0\tpos\t5\tqt\n");
  EXPECT_EQ(forward.code(), StatusCode::kParseError);
  EXPECT_NE(forward.message().find("earlier tweet"), std::string::npos)
      << forward.message();

  const Status self = ParseFailure(
      "U\t0\talice\tpos\n"
      "T\t0\t0\t0\tpos\t0\tqt\n");
  EXPECT_EQ(self.code(), StatusCode::kParseError);
}

TEST(CorpusIoTest, RejectsOutOfRangeDay) {
  const Status negative = ParseFailure(
      "U\t0\talice\tpos\n"
      "T\t0\t0\t-3\tpos\t-1\thello\n");
  EXPECT_EQ(negative.code(), StatusCode::kParseError);
  EXPECT_NE(negative.message().find("out of range"), std::string::npos)
      << negative.message();

  const Status huge = ParseFailure(
      "U\t0\talice\tpos\n"
      "T\t0\t0\t99999999\tpos\t-1\thello\n");
  EXPECT_EQ(huge.code(), StatusCode::kParseError);

  const Status bad_label_day = ParseFailure(
      "U\t0\talice\tpos\n"
      "D\t0\t-1\tneg\n");
  EXPECT_EQ(bad_label_day.code(), StatusCode::kParseError);
}

TEST(CorpusIoTest, RejectsUndefinedUserReferences) {
  EXPECT_NE(ParseFailure("T\t0\t7\t0\tpos\t-1\thello\n")
                .message()
                .find("undefined user"),
            std::string::npos);
  EXPECT_NE(ParseFailure("D\t7\t0\tneg\n").message().find("undefined user"),
            std::string::npos);
}

TEST(CorpusIoTest, RejectsNonContiguousIds) {
  const Status user_gap = ParseFailure("U\t1\talice\tpos\n");
  EXPECT_NE(user_gap.message().find("non-contiguous"), std::string::npos);
  const Status tweet_gap = ParseFailure(
      "U\t0\talice\tpos\n"
      "T\t3\t0\t0\tpos\t-1\thello\n");
  EXPECT_NE(tweet_gap.message().find("non-contiguous"), std::string::npos);
}

TEST(CorpusIoTest, RejectsUnknownLabelsAndTags) {
  EXPECT_NE(ParseFailure("U\t0\talice\tgreat\n").message().find("label"),
            std::string::npos);
  EXPECT_NE(ParseFailure("X\twhat\n").message().find("unknown row tag"),
            std::string::npos);
  // D rows must carry a real label: an unlabeled annotation is meaningless.
  EXPECT_NE(ParseFailure("U\t0\talice\tpos\nD\t0\t0\tunlabeled\n")
                .message()
                .find("pos/neg/neu"),
            std::string::npos);
}

TEST(CorpusIoTest, MissingFileIsIoError) {
  const auto result = ReadTsv("/nonexistent/path/corpus.tsv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(CorpusIoTest, WriteTsvToPathIsAtomic) {
  // An existing file is replaced through temp+rename: after a successful
  // write no temporary remains and the contents parse.
  const std::string path = ::testing::TempDir() + "/corpus_io_atomic.tsv";
  { std::ofstream previous(path); previous << "not a corpus"; }
  ASSERT_TRUE(WriteTsv(RichCorpus(), path).ok());
  auto loaded = ReadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_tweets(), RichCorpus().num_tweets());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace triclust
