/// Tests of the corpus TSV loaders (src/data/corpus_io.h): lossless
/// round-trip including temporal labels and escaped text, legacy-format
/// compatibility, and line-numbered diagnostics for malformed input.

#include "src/data/corpus_io.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/snapshots.h"
#include "src/data/synthetic.h"

namespace triclust {
namespace {

Corpus RichCorpus() {
  Corpus c;
  const size_t alice = c.AddUser("alice", Sentiment::kPositive);
  const size_t bob = c.AddUser("bob", Sentiment::kNegative);
  c.AddUser("carol");  // unlabeled, never tweets
  c.AddTweet(alice, 0, "yes on 37", Sentiment::kPositive);
  c.AddTweet(bob, 1, "no on 37", Sentiment::kNegative);
  c.AddTweet(alice, 2, "tab\there newline\nthere backslash\\done",
             Sentiment::kNeutral);
  c.AddTweet(bob, 2, "yes on 37", Sentiment::kPositive, /*retweet_of=*/0);
  c.SetUserSentimentAt(alice, 1, Sentiment::kNegative);
  c.SetUserSentimentAt(bob, 2, Sentiment::kPositive);
  return c;
}

void ExpectSameCorpus(const Corpus& got, const Corpus& expected) {
  ASSERT_EQ(got.num_users(), expected.num_users());
  ASSERT_EQ(got.num_tweets(), expected.num_tweets());
  for (size_t u = 0; u < expected.num_users(); ++u) {
    EXPECT_EQ(got.user(u).handle, expected.user(u).handle);
    EXPECT_EQ(got.user(u).label, expected.user(u).label);
  }
  for (size_t i = 0; i < expected.num_tweets(); ++i) {
    EXPECT_EQ(got.tweet(i).user, expected.tweet(i).user);
    EXPECT_EQ(got.tweet(i).day, expected.tweet(i).day);
    EXPECT_EQ(got.tweet(i).text, expected.tweet(i).text);
    EXPECT_EQ(got.tweet(i).label, expected.tweet(i).label);
    EXPECT_EQ(got.tweet(i).retweet_of, expected.tweet(i).retweet_of);
  }
  EXPECT_EQ(got.HasTemporalUserLabels(), expected.HasTemporalUserLabels());
  for (size_t u = 0; u < expected.num_users(); ++u) {
    for (int day = 0; day < 4; ++day) {
      EXPECT_EQ(got.ExplicitUserSentimentAt(u, day),
                expected.ExplicitUserSentimentAt(u, day))
          << "user " << u << " day " << day;
    }
  }
}

TEST(CorpusIoTest, StreamRoundTripIsLossless) {
  const Corpus original = RichCorpus();
  std::ostringstream out;
  ASSERT_TRUE(WriteTsv(original, &out).ok());
  std::istringstream in(out.str());
  auto loaded = ReadTsv(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameCorpus(loaded.value(), original);
}

TEST(CorpusIoTest, FileRoundTripIsLossless) {
  const Corpus original = RichCorpus();
  const std::string path = ::testing::TempDir() + "/corpus_io_roundtrip.tsv";
  ASSERT_TRUE(WriteTsv(original, path).ok());
  auto loaded = ReadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameCorpus(loaded.value(), original);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, SyntheticCorpusRoundTrips) {
  // The generator produces temporal labels, retweets, and emoticon tokens —
  // the full feature surface of the format on a realistic corpus.
  SyntheticConfig config;
  config.num_users = 40;
  config.num_days = 5;
  config.base_tweets_per_day = 40.0;
  config.burst_days = {};
  const Corpus original = GenerateSynthetic(config).corpus;
  ASSERT_TRUE(original.HasTemporalUserLabels());

  std::ostringstream out;
  ASSERT_TRUE(WriteTsv(original, &out).ok());
  std::istringstream in(out.str());
  auto loaded = ReadTsv(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameCorpus(loaded.value(), original);
}

TEST(CorpusIoTest, EscapingRoundTripsEveryControlCharacter) {
  const std::string text = "a\tb\nc\rd\\e\\tf";
  EXPECT_EQ(UnescapeTsvField(EscapeTsvField(text)), text);
  // Escaped form is tab- and newline-free (one record per line holds).
  const std::string escaped = EscapeTsvField(text);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  // Unknown escapes pass through so legacy raw backslashes survive.
  EXPECT_EQ(UnescapeTsvField("legacy \\x path"), "legacy \\x path");
}

TEST(CorpusIoTest, ReadsLegacyIntegerLabelFormat) {
  // The pre-corpus_io writer: "#users" banner, integer labels, no D rows.
  const std::string legacy =
      "#users\t2\n"
      "U\t0\talice\t0\n"
      "U\t1\tbob\t-1\n"
      "T\t0\t0\t0\t0\t-1\thello world\n"
      "T\t1\t1\t2\t1\t0\thello again\n";
  std::istringstream in(legacy);
  auto loaded = ReadTsv(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Corpus& c = loaded.value();
  EXPECT_EQ(c.user(0).label, Sentiment::kPositive);
  EXPECT_EQ(c.user(1).label, Sentiment::kUnlabeled);
  EXPECT_EQ(c.tweet(1).label, Sentiment::kNegative);
  EXPECT_EQ(c.tweet(1).retweet_of, 0);
  EXPECT_FALSE(c.HasTemporalUserLabels());
}

TEST(CorpusIoTest, LegacyBannerDisablesUnescaping) {
  // The legacy writer never escaped, so a literal backslash-t in its text
  // is two bytes of text, not a tab; the "#users" banner must switch the
  // reader to raw fields. Without the banner the same bytes decode.
  const std::string body =
      "U\t0\talice\t0\n"
      "T\t0\t0\t0\t0\t-1\tsaved to C:\\temp today\n";
  {
    std::istringstream in("#users\t1\n" + body);
    auto loaded = ReadTsv(&in);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().tweet(0).text, "saved to C:\\temp today");
  }
  {
    std::istringstream in(body);
    auto loaded = ReadTsv(&in);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().tweet(0).text, "saved to C:\temp today");
  }
  {
    // The banner only counts on line 1: a stray "#users" comment later in
    // a new-format file must not disable unescaping mid-stream.
    std::istringstream in("# new format\n#users\t1\n" + body);
    auto loaded = ReadTsv(&in);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().tweet(0).text, "saved to C:\temp today");
  }
  {
    // Legacy mode is byte-exact like the old loader: a trailing raw CR in
    // legacy text is content, not a CRLF artifact, and must survive.
    std::istringstream in(
        "#users\t1\n"
        "U\t0\talice\t0\n"
        "T\t0\t0\t0\t0\t-1\ttrailing cr\r\n");
    auto loaded = ReadTsv(&in);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().tweet(0).text, "trailing cr\r");
  }
}

TEST(CorpusIoTest, AcceptsCrlfLineEndings) {
  // Externally-prepared TSVs often arrive with CRLF endings; the trailing
  // CR must not corrupt the last field (text on T rows, label on U rows).
  const std::string crlf =
      "U\t0\talice\tpos\r\n"
      "T\t0\t0\t0\tpos\t-1\thello world\r\n";
  std::istringstream in(crlf);
  auto loaded = ReadTsv(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().user(0).label, Sentiment::kPositive);
  EXPECT_EQ(loaded.value().tweet(0).text, "hello world");
  // A real CR in text still round-trips via its escape, CRLF or not.
  Corpus with_cr;
  with_cr.AddTweet(with_cr.AddUser("u"), 0, "line\rwith cr");
  std::ostringstream out;
  ASSERT_TRUE(WriteTsv(with_cr, &out).ok());
  std::istringstream back(out.str());
  auto reloaded = ReadTsv(&back);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().tweet(0).text, "line\rwith cr");
}

TEST(CorpusIoTest, WarnsButAcceptsLargeEmptyDayPrefix) {
  // Absolute-epoch-style day numbers pass range validation; the reader
  // must still accept them (they are formally valid) — the warning path
  // is exercised here, the parse result is what we pin.
  const std::string contents =
      "U\t0\talice\tpos\n"
      "T\t0\t0\t20600\tpos\t-1\thello from epoch land\n";
  std::istringstream in(contents);
  auto loaded = ReadTsv(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().tweet(0).day, 20600);
  EXPECT_EQ(loaded.value().num_days(), 20601);

  // Epoch-style days on D rows alone take the same warn-but-accept path.
  const std::string d_only =
      "U\t0\talice\tpos\n"
      "D\t0\t20600\tneg\n"
      "T\t0\t0\t0\tpos\t-1\thello\n";
  std::istringstream d_in(d_only);
  auto d_loaded = ReadTsv(&d_in);
  ASSERT_TRUE(d_loaded.ok()) << d_loaded.status().ToString();
  EXPECT_EQ(d_loaded.value().ExplicitUserSentimentAt(0, 20600),
            Sentiment::kNegative);
}

// --- diagnostics -------------------------------------------------------------

Status ParseFailure(const std::string& contents) {
  std::istringstream in(contents);
  const auto result = ReadTsv(&in, "test.tsv");
  EXPECT_FALSE(result.ok()) << "expected a parse failure";
  return result.ok() ? Status::OK() : result.status();
}

TEST(CorpusIoTest, RejectsBadColumnCountWithLineNumber) {
  const Status status =
      ParseFailure("U\t0\talice\tpos\nT\t0\t0\t0\tpos\t-1\n");
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("test.tsv:2:"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("7 fields"), std::string::npos)
      << status.message();
}

TEST(CorpusIoTest, RejectsDanglingRetweet) {
  // retweet_of must point at an *earlier* tweet: forward and self
  // references are dangling at the time the row is read.
  const Status forward = ParseFailure(
      "U\t0\talice\tpos\n"
      "T\t0\t0\t0\tpos\t5\tqt\n");
  EXPECT_EQ(forward.code(), StatusCode::kParseError);
  EXPECT_NE(forward.message().find("earlier tweet"), std::string::npos)
      << forward.message();

  const Status self = ParseFailure(
      "U\t0\talice\tpos\n"
      "T\t0\t0\t0\tpos\t0\tqt\n");
  EXPECT_EQ(self.code(), StatusCode::kParseError);
}

TEST(CorpusIoTest, RejectsOutOfRangeDay) {
  const Status negative = ParseFailure(
      "U\t0\talice\tpos\n"
      "T\t0\t0\t-3\tpos\t-1\thello\n");
  EXPECT_EQ(negative.code(), StatusCode::kParseError);
  EXPECT_NE(negative.message().find("out of range"), std::string::npos)
      << negative.message();

  const Status huge = ParseFailure(
      "U\t0\talice\tpos\n"
      "T\t0\t0\t99999999\tpos\t-1\thello\n");
  EXPECT_EQ(huge.code(), StatusCode::kParseError);

  const Status bad_label_day = ParseFailure(
      "U\t0\talice\tpos\n"
      "D\t0\t-1\tneg\n");
  EXPECT_EQ(bad_label_day.code(), StatusCode::kParseError);
}

TEST(CorpusIoTest, RejectsUndefinedUserReferences) {
  EXPECT_NE(ParseFailure("T\t0\t7\t0\tpos\t-1\thello\n")
                .message()
                .find("undefined user"),
            std::string::npos);
  EXPECT_NE(ParseFailure("D\t7\t0\tneg\n").message().find("undefined user"),
            std::string::npos);
}

TEST(CorpusIoTest, RejectsNonContiguousIds) {
  const Status user_gap = ParseFailure("U\t1\talice\tpos\n");
  EXPECT_NE(user_gap.message().find("non-contiguous"), std::string::npos);
  const Status tweet_gap = ParseFailure(
      "U\t0\talice\tpos\n"
      "T\t3\t0\t0\tpos\t-1\thello\n");
  EXPECT_NE(tweet_gap.message().find("non-contiguous"), std::string::npos);
}

TEST(CorpusIoTest, RejectsUnknownLabelsAndTags) {
  EXPECT_NE(ParseFailure("U\t0\talice\tgreat\n").message().find("label"),
            std::string::npos);
  EXPECT_NE(ParseFailure("X\twhat\n").message().find("unknown row tag"),
            std::string::npos);
  // D rows must carry a real label: an unlabeled annotation is meaningless.
  EXPECT_NE(ParseFailure("U\t0\talice\tpos\nD\t0\t0\tunlabeled\n")
                .message()
                .find("pos/neg/neu"),
            std::string::npos);
}

TEST(CorpusIoTest, MissingFileIsIoError) {
  const auto result = ReadTsv("/nonexistent/path/corpus.tsv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(CorpusIoTest, WriteTsvToPathIsAtomic) {
  // An existing file is replaced through temp+rename: after a successful
  // write no temporary remains and the contents parse.
  const std::string path = ::testing::TempDir() + "/corpus_io_atomic.tsv";
  { std::ofstream previous(path); previous << "not a corpus"; }
  ASSERT_TRUE(WriteTsv(RichCorpus(), path).ok());
  auto loaded = ReadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_tweets(), RichCorpus().num_tweets());
  std::remove(path.c_str());
}

// --- streaming reader ---------------------------------------------------------

// A corpus whose stream has empty gap days (days 1 and 2 are silent) plus
// temporal labels and a retweet — the shapes the streaming reader must
// reproduce exactly.
Corpus GappyCorpus() {
  Corpus c;
  const size_t alice = c.AddUser("alice", Sentiment::kPositive);
  const size_t bob = c.AddUser("bob", Sentiment::kNegative);
  c.AddTweet(alice, 0, "yes on 37", Sentiment::kPositive);
  c.AddTweet(bob, 0, "no on 37", Sentiment::kNegative);
  c.AddTweet(alice, 3, "tab\there still yes", Sentiment::kNeutral);
  c.AddTweet(bob, 4, "yes on 37", Sentiment::kPositive, /*retweet_of=*/0);
  c.SetUserSentimentAt(bob, 3, Sentiment::kPositive);
  return c;
}

TEST(TsvStreamReaderTest, YieldsSameCorpusAndDayChunksAsWholeFileRead) {
  const Corpus original = GappyCorpus();
  std::ostringstream out;
  ASSERT_TRUE(WriteTsv(original, &out).ok());

  auto reader_or = TsvStreamReader::Open(
      std::make_unique<std::istringstream>(out.str()), "gappy.tsv");
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  auto reader = std::move(reader_or).value();
  // The preamble already carries every user and annotation.
  EXPECT_EQ(reader->corpus().num_users(), original.num_users());
  EXPECT_TRUE(reader->corpus().HasTemporalUserLabels());

  std::vector<TsvDayBatch> batches;
  TsvDayBatch batch;
  while (true) {
    const Result<bool> more = reader->NextDay(&batch);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!more.value()) break;
    batches.push_back(batch);
  }

  // Day chunks are yielded consecutively from 0 — the silent days 1 and 2
  // appear as empty batches, so replay day indices stay aligned with
  // ReadTsv + SplitByDay.
  const std::vector<Snapshot> days = SplitByDay(original);
  ASSERT_EQ(batches.size(), days.size());
  for (size_t d = 0; d < days.size(); ++d) {
    EXPECT_EQ(batches[d].day, static_cast<int>(d));
    EXPECT_EQ(batches[d].tweet_ids, days[d].tweet_ids) << "day " << d;
  }
  // Without ReleaseText the grown corpus equals the whole-file read,
  // text bytes included.
  ExpectSameCorpus(reader->TakeCorpus(), original);
}

TEST(TsvStreamReaderTest, ReadTsvStreamBoundsResidentTextToOneDay) {
  const Corpus original = GappyCorpus();
  const std::string path = ::testing::TempDir() + "/corpus_io_stream.tsv";
  ASSERT_TRUE(WriteTsv(original, path).ok());

  int expected_day = 0;
  auto streamed = ReadTsvStream(
      path, [&](int day, const Corpus& c, const std::vector<size_t>& ids) {
        EXPECT_EQ(day, expected_day++);
        for (size_t id : ids) {
          // The current day's text is present for vectorization...
          EXPECT_EQ(c.tweet(id).text, original.tweet(id).text);
          // ...while every earlier day's text has been released.
          for (size_t prior = 0; prior < id; ++prior) {
            if (c.tweet(prior).day < day) {
              EXPECT_TRUE(c.tweet(prior).text.empty()) << prior;
            }
          }
        }
        return Status::OK();
      });
  std::remove(path.c_str());
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_EQ(expected_day, original.num_days());

  // The final corpus keeps all metadata but no text.
  const Corpus& c = streamed.value();
  ASSERT_EQ(c.num_tweets(), original.num_tweets());
  for (size_t i = 0; i < c.num_tweets(); ++i) {
    EXPECT_TRUE(c.tweet(i).text.empty()) << i;
    EXPECT_EQ(c.tweet(i).user, original.tweet(i).user);
    EXPECT_EQ(c.tweet(i).day, original.tweet(i).day);
    EXPECT_EQ(c.tweet(i).label, original.tweet(i).label);
    EXPECT_EQ(c.tweet(i).retweet_of, original.tweet(i).retweet_of);
  }
}

TEST(TsvStreamReaderTest, MalformedChunkDiagnosticsMatchReadTsvByteForByte) {
  // A malformed row deep in a later day-chunk must be reported with its
  // absolute file line number — the same "<source>:<line>: <why>"
  // diagnostic ReadTsv emits for the identical file.
  std::ostringstream out;
  ASSERT_TRUE(WriteTsv(GappyCorpus(), &out).ok());
  std::istringstream split(out.str());
  std::vector<std::string> lines;
  for (std::string line; std::getline(split, line);) lines.push_back(line);
  // Corrupt the LAST tweet row (the day-4 chunk).
  size_t corrupt_line = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (!lines[i].empty() && lines[i][0] == 'T') corrupt_line = i;
  }
  ASSERT_GT(corrupt_line, 0u);
  lines[corrupt_line] = "T\tnot-enough-fields";
  std::string corrupted;
  for (const std::string& line : lines) corrupted += line + "\n";

  auto whole = [&] {
    std::istringstream in(corrupted);
    return ReadTsv(&in, "bad.tsv").status();
  }();
  ASSERT_FALSE(whole.ok());
  EXPECT_NE(whole.ToString().find(
                "bad.tsv:" + std::to_string(corrupt_line + 1) + ":"),
            std::string::npos)
      << whole.ToString();

  auto reader_or = TsvStreamReader::Open(
      std::make_unique<std::istringstream>(corrupted), "bad.tsv");
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  auto reader = std::move(reader_or).value();
  TsvDayBatch batch;
  Status streaming = Status::OK();
  while (streaming.ok()) {
    const Result<bool> more = reader->NextDay(&batch);
    if (!more.ok()) {
      streaming = more.status();
      break;
    }
    ASSERT_TRUE(more.value()) << "stream ended before the malformed row";
  }
  EXPECT_EQ(streaming.ToString(), whole.ToString());
}

TEST(TsvStreamReaderTest, RejectsNonCanonicalSectionOrder) {
  // ReadTsv accepts arbitrary row interleavings; the streaming reader
  // requires WriteTsv's canonical section order and says so.
  const std::string interleaved =
      "U\t0\talice\tpos\n"
      "T\t0\t0\t0\tpos\t-1\thello\n"
      "U\t1\tbob\tneg\n";
  {
    std::istringstream in(interleaved);
    EXPECT_TRUE(ReadTsv(&in, "mixed.tsv").ok());
  }
  auto reader_or = TsvStreamReader::Open(
      std::make_unique<std::istringstream>(interleaved), "mixed.tsv");
  ASSERT_TRUE(reader_or.ok());
  auto reader = std::move(reader_or).value();
  TsvDayBatch batch;
  Result<bool> more = reader->NextDay(&batch);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kParseError);
  EXPECT_NE(more.status().ToString().find("mixed.tsv:3:"),
            std::string::npos)
      << more.status().ToString();
  EXPECT_NE(more.status().ToString().find("canonical section order"),
            std::string::npos)
      << more.status().ToString();
}

TEST(TsvStreamReaderTest, RejectsBackwardTweetDays) {
  const std::string backwards =
      "U\t0\talice\tpos\n"
      "T\t0\t0\t2\tpos\t-1\tlater\n"
      "T\t1\t0\t1\tpos\t-1\tearlier\n";
  {
    std::istringstream in(backwards);
    EXPECT_TRUE(ReadTsv(&in, "back.tsv").ok());
  }
  auto reader_or = TsvStreamReader::Open(
      std::make_unique<std::istringstream>(backwards), "back.tsv");
  ASSERT_TRUE(reader_or.ok());
  auto reader = std::move(reader_or).value();
  TsvDayBatch batch;
  Status error = Status::OK();
  while (error.ok()) {
    const Result<bool> more = reader->NextDay(&batch);
    if (!more.ok()) {
      error = more.status();
      break;
    }
    ASSERT_TRUE(more.value()) << "stream ended without rejecting";
  }
  EXPECT_EQ(error.code(), StatusCode::kParseError);
  EXPECT_NE(error.ToString().find("back.tsv:3:"), std::string::npos)
      << error.ToString();
  EXPECT_NE(error.ToString().find("goes backwards"), std::string::npos)
      << error.ToString();
}

}  // namespace
}  // namespace triclust
