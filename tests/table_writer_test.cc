#include "src/util/table_writer.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "src/util/stopwatch.h"

namespace triclust {
namespace {

TEST(TableWriterTest, PrintsAlignedTable) {
  TableWriter table("Demo");
  table.SetHeader({"method", "acc"});
  table.AddRow({"tri-clustering", "81.87"});
  table.AddRow({"svm", "89.35"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("tri-clustering"), std::string::npos);
  EXPECT_NE(out.find("89.35"), std::string::npos);
  // Columns align: both data lines start with "| " and the header padding
  // makes every row the same length.
  std::istringstream lines(out);
  std::string line;
  size_t row_len = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("| ", 0) == 0) {
      if (row_len == 0) row_len = line.size();
      EXPECT_EQ(line.size(), row_len) << line;
    }
  }
  EXPECT_GT(row_len, 0u);
}

TEST(TableWriterTest, CsvOutput) {
  TableWriter table("T");
  table.SetHeader({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "# T\na,b\n1,2\n3,4\n");
}

TEST(TableWriterTest, NumFormatsAndHandlesNan) {
  EXPECT_EQ(TableWriter::Num(1.23456), "1.23");
  EXPECT_EQ(TableWriter::Num(1.23456, 4), "1.2346");
  EXPECT_EQ(TableWriter::Num(std::nan("")), "-");
  EXPECT_EQ(TableWriter::Num(-0.5, 1), "-0.5");
}

TEST(TableWriterTest, RowCountTracked) {
  TableWriter table("T");
  table.SetHeader({"x"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"1"});
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TableWriterDeathTest, RowArityMustMatchHeader) {
  TableWriter table("T");
  table.SetHeader({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "check failed");
}

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch watch;
  const double t1 = watch.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const double t2 = watch.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 1e3 * 0.5 + 1.0);
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), t2 + 1.0);
}

}  // namespace
}  // namespace triclust
