/// Tests of matrix I/O and online-state checkpointing: a restarted
/// clusterer must continue the stream exactly as the original would.

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "src/core/online.h"
#include "src/data/snapshots.h"
#include "src/matrix/io.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

// --- dense matrix I/O ---------------------------------------------------------

TEST(MatrixIoTest, RoundTripsExactly) {
  Rng rng(1);
  const DenseMatrix original = DenseMatrix::Random(7, 3, &rng, -5.0, 5.0);
  std::stringstream buffer;
  WriteDenseMatrix(original, &buffer);
  auto loaded = ReadDenseMatrix(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), original);  // bitwise via %.17g
}

TEST(MatrixIoTest, RoundTripsEmptyAndExtremeValues) {
  {
    std::stringstream buffer;
    WriteDenseMatrix(DenseMatrix(0, 0), &buffer);
    auto loaded = ReadDenseMatrix(&buffer);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().rows(), 0u);
  }
  {
    DenseMatrix m({{1e-300, 1e300}, {0.0, -2.5e-17}});
    std::stringstream buffer;
    WriteDenseMatrix(m, &buffer);
    auto loaded = ReadDenseMatrix(&buffer);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value(), m);
  }
}

TEST(MatrixIoTest, RejectsMalformedInput) {
  {
    std::stringstream buffer("not a header\n");
    EXPECT_FALSE(ReadDenseMatrix(&buffer).ok());
  }
  {
    std::stringstream buffer("2 2\n1 2\n");  // truncated
    EXPECT_FALSE(ReadDenseMatrix(&buffer).ok());
  }
  {
    std::stringstream buffer("1 2\n1 2 3\n");  // wrong arity
    EXPECT_FALSE(ReadDenseMatrix(&buffer).ok());
  }
  {
    std::stringstream buffer("1 1\nxyz\n");  // bad value
    EXPECT_FALSE(ReadDenseMatrix(&buffer).ok());
  }
  {
    std::stringstream buffer;
    EXPECT_FALSE(ReadDenseMatrix(&buffer).ok());  // empty stream
  }
}

// --- online checkpointing -------------------------------------------------------

TEST(CheckpointTest, RestartedStreamMatchesUninterruptedStream) {
  const auto p = testing_util::MakeSmallProblem();
  const Corpus& corpus = p.dataset.corpus;
  const auto snapshots = SplitByDay(corpus);
  OnlineConfig config;
  config.base.max_iterations = 20;
  config.base.track_loss = false;

  // Reference: uninterrupted run.
  OnlineTriClusterer reference(config, p.sf0);
  std::vector<TriClusterResult> expected;
  for (const Snapshot& snap : snapshots) {
    expected.push_back(reference.ProcessSnapshot(
        p.builder.Build(corpus, snap.tweet_ids, snap.last_day)));
  }

  // Interrupted run: checkpoint after day 3, restore into a fresh object.
  OnlineTriClusterer first(config, p.sf0);
  for (size_t s = 0; s < 4; ++s) {
    first.ProcessSnapshot(
        p.builder.Build(corpus, snapshots[s].tweet_ids,
                        snapshots[s].last_day));
  }
  const std::string path = ::testing::TempDir() + "/online_state.ckpt";
  ASSERT_TRUE(first.SaveState(path).ok());

  OnlineTriClusterer resumed(config, p.sf0);
  ASSERT_TRUE(resumed.RestoreState(path).ok());
  std::remove(path.c_str());
  EXPECT_EQ(resumed.timestep(), 4);

  for (size_t s = 4; s < snapshots.size(); ++s) {
    const DatasetMatrices data = p.builder.Build(
        corpus, snapshots[s].tweet_ids, snapshots[s].last_day);
    const TriClusterResult got = resumed.ProcessSnapshot(data);
    EXPECT_EQ(got.sp, expected[s].sp) << "snapshot " << s;
    EXPECT_EQ(got.su, expected[s].su) << "snapshot " << s;
    EXPECT_EQ(got.sf, expected[s].sf) << "snapshot " << s;
  }
}

TEST(CheckpointTest, PreservesUserHistories) {
  const auto p = testing_util::MakeSmallProblem();
  const Corpus& corpus = p.dataset.corpus;
  const auto snapshots = SplitByDay(corpus);
  OnlineConfig config;
  config.base.max_iterations = 10;
  config.base.track_loss = false;
  OnlineTriClusterer online(config, p.sf0);
  const DatasetMatrices day0 =
      p.builder.Build(corpus, snapshots[0].tweet_ids, 0);
  online.ProcessSnapshot(day0);

  const std::string path = ::testing::TempDir() + "/online_users.ckpt";
  ASSERT_TRUE(online.SaveState(path).ok());
  OnlineTriClusterer restored(config, p.sf0);
  ASSERT_TRUE(restored.RestoreState(path).ok());
  std::remove(path.c_str());

  for (size_t user_id : day0.user_ids) {
    EXPECT_EQ(restored.UserSentiment(user_id),
              online.UserSentiment(user_id));
  }
}

TEST(CheckpointTest, RejectsWrongFeatureSpace) {
  const auto p = testing_util::MakeSmallProblem();
  OnlineConfig config;
  config.base.max_iterations = 5;
  config.base.track_loss = false;
  OnlineTriClusterer online(config, p.sf0);
  const auto snapshots = SplitByDay(p.dataset.corpus);
  online.ProcessSnapshot(
      p.builder.Build(p.dataset.corpus, snapshots[0].tweet_ids, 0));
  const std::string path = ::testing::TempDir() + "/online_mismatch.ckpt";
  ASSERT_TRUE(online.SaveState(path).ok());

  // A clusterer over a different (smaller) feature space must refuse it.
  const DenseMatrix small_sf0(10, 3, 1.0 / 3.0);
  OnlineTriClusterer other(config, small_sf0);
  const Status status = other.RestoreState(path);
  std::remove(path.c_str());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, MissingFileFailsCleanly) {
  const auto p = testing_util::MakeSmallProblem();
  OnlineConfig config;
  OnlineTriClusterer online(config, p.sf0);
  EXPECT_EQ(online.RestoreState("/nonexistent/state.ckpt").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace triclust
