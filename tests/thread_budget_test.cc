/// Tests of the hierarchical per-fit ThreadBudget scheduler
/// (src/util/parallel.h): width resolution, nested two-level parallelism,
/// concurrent pool jobs, the any-width bit-identity of the fixed-grain
/// reductions, and the budget split used by CampaignEngine::Advance.

#include "src/util/parallel.h"

#include <atomic>
#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/offline.h"
#include "src/matrix/ops.h"
#include "src/serving/campaign_engine.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::MakeSmallProblem;
using testing_util::RandomSparse;
using testing_util::SmallProblem;

/// Sizes above the reduction grains so multi-chunk combining engages.
constexpr size_t kRows = 3000;
constexpr size_t kCols = 700;
constexpr size_t kK = 3;

// --- ThreadBudget value semantics and width resolution -----------------------

TEST(ThreadBudgetTest, ResolvesZeroToHardwareConcurrency) {
  const ThreadBudget automatic(0);
  EXPECT_EQ(automatic.threads(), 0);
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(automatic.resolved(), hw > 0 ? static_cast<int>(hw) : 1);
  EXPECT_GE(automatic.resolved(), 1);
}

TEST(ThreadBudgetTest, ExplicitBudgetResolvesToItself) {
  const ThreadBudget five(5);
  EXPECT_EQ(five.threads(), 5);
  EXPECT_EQ(five.resolved(), 5);
  EXPECT_FALSE(five.is_ambient());
  EXPECT_TRUE(ThreadBudget().is_ambient());
  EXPECT_TRUE(ThreadBudget::Ambient().is_ambient());
  EXPECT_EQ(ThreadBudget::Serial().resolved(), 1);
}

TEST(ThreadBudgetTest, WidthResolutionOrder) {
  // Rule 3: no budget, no nesting — the process-wide default applies.
  ScopedNumThreads global(3);
  EXPECT_EQ(CurrentParallelWidth(), 3);
  {
    // Rule 1: an installed budget wins over the global default.
    ScopedThreadBudget budget(ThreadBudget(2));
    EXPECT_EQ(CurrentParallelWidth(), 2);
    {
      // Innermost budget wins; ambient installs are no-ops.
      ScopedThreadBudget inner(ThreadBudget(7));
      EXPECT_EQ(CurrentParallelWidth(), 7);
      ScopedThreadBudget ambient{ThreadBudget::Ambient()};
      EXPECT_EQ(CurrentParallelWidth(), 7);
    }
    EXPECT_EQ(CurrentParallelWidth(), 2);
  }
  EXPECT_EQ(CurrentParallelWidth(), 3);
}

TEST(ThreadBudgetTest, BraceInitializedScopeInstallsNamedBudget) {
  // Regression: `ScopedThreadBudget scope(ThreadBudget(n));` with a *named*
  // argument is a function declaration (most vexing parse) — it compiles,
  // installs nothing, and the caller silently runs at the ambient width.
  // CampaignEngine::Advance hit exactly this. Brace initialization is the
  // required spelling; -Wvexing-parse (promoted via -Wall) rejects the
  // paren form at compile time, and this test pins the runtime behavior.
  ScopedNumThreads global(3);
  const int n = 5;
  ThreadBudget named(n);
  ScopedThreadBudget scope{named};
  EXPECT_EQ(CurrentParallelWidth(), 5);
}

TEST(ThreadBudgetTest, SerialKernelsScopeIsBudgetOfOne) {
  ScopedNumThreads global(4);
  ScopedSerialKernels serial;
  EXPECT_EQ(CurrentParallelWidth(), 1);
  // A nested explicit budget overrides it (innermost wins) — this is how
  // a sharded fit re-widens inside the campaign tier.
  ScopedThreadBudget budget(ThreadBudget(2));
  EXPECT_EQ(CurrentParallelWidth(), 2);
}

TEST(ThreadBudgetTest, ChunkBodiesStartSerialAndCanInstallBudgets) {
  // Rule 2: inside a parallel region with no budget the width degrades to
  // 1; installing a budget inside the chunk re-enables parallelism.
  ScopedNumThreads global(2);
  std::atomic<int> serial_widths{0};
  std::atomic<int> rewidened_widths{0};
  ParallelFor(0, 8, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (CurrentParallelWidth() == 1) serial_widths.fetch_add(1);
      ScopedThreadBudget budget(ThreadBudget(3));
      if (CurrentParallelWidth() == 3) rewidened_widths.fetch_add(1);
    }
  });
  EXPECT_EQ(serial_widths.load(), 8);
  EXPECT_EQ(rewidened_widths.load(), 8);
}

// --- nested (two-level) execution --------------------------------------------

TEST(NestedParallelismTest, InnerParallelForCoversEveryIndexExactlyOnce) {
  // Campaign-tier fan-out over 4 tasks; each task installs its own budget
  // and row-parallelizes — the engine's exact execution shape.
  ScopedNumThreads global(4);
  constexpr size_t kTasks = 4;
  constexpr size_t kItems = 10000;
  std::vector<std::vector<std::atomic<int>>> hits(kTasks);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kItems);
  }
  ParallelFor(0, kTasks, 1, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      ScopedThreadBudget fit_budget(ThreadBudget(2));
      ParallelFor(0, kItems, 1, [&, t](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) hits[t][i].fetch_add(1);
      });
    }
  });
  for (size_t t = 0; t < kTasks; ++t) {
    for (size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(hits[t][i].load(), 1) << "task " << t << " item " << i;
    }
  }
}

TEST(NestedParallelismTest, InnerReduceBitIdenticalToSerialReference) {
  std::vector<double> values(3 * kReduceFlatGrain + 17);
  Rng rng(7);
  for (double& v : values) v = rng.Uniform(-1.0, 1.0);
  auto chunk_sum = [&](size_t begin, size_t end) {
    double total = 0.0;
    for (size_t i = begin; i < end; ++i) total += values[i];
    return total;
  };
  const double reference =
      ParallelReduce(0, values.size(), kReduceFlatGrain, chunk_sum);

  ScopedNumThreads global(3);
  std::vector<double> nested(3, 0.0);
  ParallelFor(0, nested.size(), 1, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      ScopedThreadBudget fit_budget(ThreadBudget(static_cast<int>(t) + 1));
      nested[t] = ParallelReduce(0, values.size(), kReduceFlatGrain,
                                 chunk_sum);
    }
  });
  for (size_t t = 0; t < nested.size(); ++t) {
    EXPECT_EQ(nested[t], reference) << "budget " << t + 1;
  }
}

TEST(NestedParallelismTest, ConcurrentSubmittersFromDistinctThreads) {
  // Two top-level threads each drive their own parallel jobs against the
  // shared pool — the multi-job schedule the old one-job-at-a-time pool
  // would have serialized (and the old region flag would have broken).
  constexpr size_t kItems = 50000;
  auto work = [](int budget, std::vector<double>* out) {
    // Braces, not parens: `ScopedThreadBudget s(ThreadBudget(budget));`
    // declares a function (most vexing parse) and installs nothing.
    ScopedThreadBudget scope{ThreadBudget(budget)};
    out->assign(kItems, 0.0);
    for (int repeat = 0; repeat < 5; ++repeat) {
      ParallelFor(0, kItems, 64, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          (*out)[i] += std::sqrt(static_cast<double>(i + repeat));
        }
      });
    }
  };
  std::vector<double> a, b;
  std::thread ta([&] { work(4, &a); });
  std::thread tb([&] { work(2, &b); });
  ta.join();
  tb.join();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "index " << i;
  }
}

TEST(NestedParallelismTest, OversubscribedBudgetsDegradeGracefully) {
  // Budgets summing far past the machine: every task asks for hardware
  // concurrency. Helpers are best-effort, so this must complete and cover
  // every index exactly once.
  ScopedNumThreads global(4);
  constexpr size_t kTasks = 4;
  constexpr size_t kItems = 20000;
  std::vector<std::atomic<int>> hits(kItems);
  ParallelFor(0, kTasks, 1, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      ScopedThreadBudget fit_budget(ThreadBudget(0));  // whole machine each
      ParallelFor(0, kItems, 1, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      });
    }
  });
  for (size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(hits[i].load(), static_cast<int>(kTasks));
  }
}

// --- any-width bit-identity of the reductions --------------------------------

TEST(AnyWidthBitIdentityTest, ParallelReduceIdenticalAtEveryWidth) {
  std::vector<double> values(3 * kReduceFlatGrain + 17);
  Rng rng(9);
  for (double& v : values) v = rng.Uniform(-1.0, 1.0);
  auto chunk_sum = [&](size_t begin, size_t end) {
    double total = 0.0;
    for (size_t i = begin; i < end; ++i) total += values[i];
    return total;
  };
  std::vector<double> results;
  for (int width : {1, 2, 3, 8}) {
    ScopedThreadBudget scoped_budget{ThreadBudget(width)};
    results.push_back(
        ParallelReduce(0, values.size(), kReduceFlatGrain, chunk_sum));
  }
  // Including width 1: the serial path walks the same fixed chunks in the
  // same combine order, which is what lets a budget split reproduce a
  // standalone serial fit bit-for-bit.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]);
  }
  EXPECT_NEAR(results[0],
              std::accumulate(values.begin(), values.end(), 0.0),
              1e-9 * values.size());
}

TEST(AnyWidthBitIdentityTest, ReductionKernelsIdenticalAtEveryWidth) {
  Rng rng(11);
  const DenseMatrix u = DenseMatrix::Random(kRows, kK, &rng, 0.0, 1.0);
  const DenseMatrix v = DenseMatrix::Random(kCols, kK, &rng, 0.0, 1.0);
  const SparseMatrix x = RandomSparse(kRows, kCols, 0.01, &rng);

  DenseMatrix atb[2];
  double frob[2], loss[2];
  int idx = 0;
  for (int width : {1, 4}) {
    ScopedThreadBudget scoped_budget{ThreadBudget(width)};
    atb[idx] = MatMulAtB(u, u);
    frob[idx] = FrobeniusNormSquared(u);
    loss[idx] = FactorizationLossSquared(x, u, v);
    ++idx;
  }
  EXPECT_EQ(atb[1], atb[0]);
  EXPECT_EQ(frob[1], frob[0]);
  EXPECT_EQ(loss[1], loss[0]);
}

TEST(AnyWidthBitIdentityTest, OfflineFitBitIdenticalAcrossBudgets) {
  // Full solver fit (≈1.5k tweet rows: the row-grain reductions engage
  // multi-chunk): bitwise equal factors at every thread budget, not just
  // within tolerance.
  const SmallProblem p = MakeSmallProblem();
  TriClusterConfig config;
  config.max_iterations = 10;
  config.num_threads = 1;
  const TriClusterResult serial = OfflineTriClusterer(config).Run(p.data, p.sf0);
  for (int threads : {2, 4}) {
    config.num_threads = threads;
    const TriClusterResult parallel =
        OfflineTriClusterer(config).Run(p.data, p.sf0);
    EXPECT_EQ(parallel.iterations, serial.iterations) << threads;
    EXPECT_EQ(parallel.sp, serial.sp) << threads;
    EXPECT_EQ(parallel.su, serial.su) << threads;
    EXPECT_EQ(parallel.sf, serial.sf) << threads;
    EXPECT_EQ(parallel.hp, serial.hp) << threads;
    EXPECT_EQ(parallel.hu, serial.hu) << threads;
  }
}

TEST(AnyWidthBitIdentityTest, BudgetOfOneMatchesSerialKernelsScope) {
  // The budget-of-1 path is the same code path ScopedSerialKernels pins —
  // the degenerate case the serving layer used for every fit before the
  // hierarchical split.
  Rng rng(13);
  const DenseMatrix u = DenseMatrix::Random(kRows, kK, &rng, 0.0, 1.0);
  DenseMatrix via_scope, via_budget;
  double frob_scope, frob_budget;
  {
    ScopedSerialKernels serial;
    via_scope = MatMulAtB(u, u);
    frob_scope = FrobeniusNormSquared(u);
  }
  {
    ScopedThreadBudget budget(ThreadBudget(1));
    via_budget = MatMulAtB(u, u);
    frob_budget = FrobeniusNormSquared(u);
  }
  EXPECT_EQ(via_budget, via_scope);
  EXPECT_EQ(frob_budget, frob_scope);
}

// --- the engine's budget split -----------------------------------------------

TEST(SplitThreadBudgetTest, EvenSplit) {
  using serving::CampaignEngine;
  EXPECT_EQ(CampaignEngine::SplitThreadBudget(16, 2),
            (std::vector<int>{8, 8}));
  EXPECT_EQ(CampaignEngine::SplitThreadBudget(8, 4),
            (std::vector<int>{2, 2, 2, 2}));
}

TEST(SplitThreadBudgetTest, RemainderSpillsOntoFirstFits) {
  using serving::CampaignEngine;
  EXPECT_EQ(CampaignEngine::SplitThreadBudget(16, 3),
            (std::vector<int>{6, 5, 5}));
  EXPECT_EQ(CampaignEngine::SplitThreadBudget(5, 2),
            (std::vector<int>{3, 2}));
  EXPECT_EQ(CampaignEngine::SplitThreadBudget(7, 4),
            (std::vector<int>{2, 2, 2, 1}));
}

TEST(SplitThreadBudgetTest, MoreFitsThanThreadsDegeneratesToSerialFits) {
  using serving::CampaignEngine;
  EXPECT_EQ(CampaignEngine::SplitThreadBudget(4, 8),
            std::vector<int>(8, 1));
  EXPECT_EQ(CampaignEngine::SplitThreadBudget(1, 3),
            std::vector<int>(3, 1));
}

TEST(SplitThreadBudgetTest, SlicesSumToPoolOrFloorOfOnePerFit) {
  using serving::CampaignEngine;
  for (int pool : {1, 3, 7, 16}) {
    for (size_t fits : {size_t{1}, size_t{2}, size_t{5}, size_t{9}}) {
      const std::vector<int> budgets =
          CampaignEngine::SplitThreadBudget(pool, fits);
      ASSERT_EQ(budgets.size(), fits);
      int sum = 0;
      for (int b : budgets) {
        EXPECT_GE(b, 1);
        sum += b;
      }
      EXPECT_EQ(sum, std::max(pool, static_cast<int>(fits)))
          << "pool " << pool << " fits " << fits;
    }
  }
  EXPECT_TRUE(CampaignEngine::SplitThreadBudget(4, 0).empty());
}

}  // namespace
}  // namespace triclust
