/// Parallel-vs-serial equivalence of the kernel layer and the solver stack
/// (see src/util/parallel.h for the determinism contract), plus the
/// workspace-reuse regression tests of the allocation-free update pipeline.

#include "src/util/parallel.h"

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/offline.h"
#include "src/core/updates.h"
#include "src/graph/user_graph.h"
#include "src/matrix/ops.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::MakeSmallProblem;
using testing_util::RandomPositive;
using testing_util::RandomSparse;
using testing_util::SmallProblem;

/// Sizes above kReduceRowGrain/kReduceFlatGrain so the chunked-reduction
/// code paths actually engage (smaller inputs short-circuit to serial).
constexpr size_t kRows = 3000;
constexpr size_t kCols = 700;
constexpr size_t kK = 3;

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ScopedNumThreads threads(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, hits.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoOp) {
  ScopedNumThreads threads(4);
  bool called = false;
  ParallelFor(5, 5, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelReduceTest, MatchesSerialSumWithinRounding) {
  std::vector<double> values(50000);
  Rng rng(3);
  for (double& v : values) v = rng.Uniform(-1.0, 1.0);
  const double serial =
      std::accumulate(values.begin(), values.end(), 0.0);
  ScopedNumThreads threads(4);
  const double parallel = ParallelReduce(
      0, values.size(), kReduceFlatGrain, [&](size_t begin, size_t end) {
        double total = 0.0;
        for (size_t i = begin; i < end; ++i) total += values[i];
        return total;
      });
  EXPECT_NEAR(parallel, serial, 1e-9 * values.size());
}

TEST(ParallelReduceTest, DeterministicAcrossThreadCounts) {
  std::vector<double> values(50000);
  Rng rng(4);
  for (double& v : values) v = rng.Uniform(-1.0, 1.0);
  auto chunk_sum = [&](size_t begin, size_t end) {
    double total = 0.0;
    for (size_t i = begin; i < end; ++i) total += values[i];
    return total;
  };
  double results[3];
  int idx = 0;
  for (int t : {1, 2, 4}) {
    ScopedNumThreads threads(t);
    results[idx++] =
        ParallelReduce(0, values.size(), kReduceFlatGrain, chunk_sum);
  }
  // Fixed-grain chunks summed in chunk order at EVERY count — the 1-thread
  // path walks the same chunks serially, so it is bit-identical too (the
  // invariance the per-fit budget splits rely on; see parallel.h).
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

/// Row-partitioned kernels must be bit-identical at any thread count.
class RowPartitionedKernelTest : public ::testing::Test {
 protected:
  RowPartitionedKernelTest()
      : rng_(11),
        a_(DenseMatrix::Random(kRows, kCols, &rng_, -1.0, 1.0)),
        b_(DenseMatrix::Random(kCols, kK, &rng_, -1.0, 1.0)),
        tall_(DenseMatrix::Random(kRows, kK, &rng_, -1.0, 1.0)),
        x_(RandomSparse(kRows, kCols, 0.01, &rng_)) {}

  Rng rng_;
  DenseMatrix a_;     // kRows×kCols
  DenseMatrix b_;     // kCols×kK
  DenseMatrix tall_;  // kRows×kK
  SparseMatrix x_;    // kRows×kCols
};

TEST_F(RowPartitionedKernelTest, MatMulBitIdentical) {
  ScopedNumThreads serial(1);
  const DenseMatrix expected = MatMul(a_, b_);
  ScopedNumThreads parallel(4);
  EXPECT_EQ(MatMul(a_, b_), expected);
}

TEST_F(RowPartitionedKernelTest, MatMulABtBitIdentical) {
  const DenseMatrix bt = b_.Transposed();  // kK×kCols
  ScopedNumThreads serial(1);
  const DenseMatrix expected = MatMulABt(a_, bt);
  ScopedNumThreads parallel(4);
  EXPECT_EQ(MatMulABt(a_, bt), expected);
}

TEST_F(RowPartitionedKernelTest, SpMMBitIdentical) {
  ScopedNumThreads serial(1);
  const DenseMatrix expected = SpMM(x_, b_);
  ScopedNumThreads parallel(4);
  EXPECT_EQ(SpMM(x_, b_), expected);
}

TEST_F(RowPartitionedKernelTest, DiagScaleRowsBitIdentical) {
  std::vector<double> diag(kRows);
  Rng rng(12);
  for (double& d : diag) d = rng.Uniform(0.0, 2.0);
  ScopedNumThreads serial(1);
  const DenseMatrix expected = DiagScaleRows(diag, tall_);
  ScopedNumThreads parallel(4);
  EXPECT_EQ(DiagScaleRows(diag, tall_), expected);
}

TEST_F(RowPartitionedKernelTest, MultiplicativeUpdateBitIdentical) {
  Rng rng(13);
  const DenseMatrix numer = RandomPositive(kRows, kK, &rng);
  const DenseMatrix denom = RandomPositive(kRows, kK, &rng);
  DenseMatrix serial_m = tall_;
  DenseMatrix parallel_m = tall_;
  {
    ScopedNumThreads serial(1);
    MultiplicativeUpdateInPlace(&serial_m, numer, denom, 1e-12);
  }
  {
    ScopedNumThreads parallel(4);
    MultiplicativeUpdateInPlace(&parallel_m, numer, denom, 1e-12);
  }
  EXPECT_EQ(parallel_m, serial_m);
}

TEST_F(RowPartitionedKernelTest, SplitPositiveNegativeBitIdentical) {
  DenseMatrix pos_serial, neg_serial, pos_parallel, neg_parallel;
  {
    ScopedNumThreads serial(1);
    SplitPositiveNegative(a_, &pos_serial, &neg_serial);
  }
  {
    ScopedNumThreads parallel(4);
    SplitPositiveNegative(a_, &pos_parallel, &neg_parallel);
  }
  EXPECT_EQ(pos_parallel, pos_serial);
  EXPECT_EQ(neg_parallel, neg_serial);
}

TEST_F(RowPartitionedKernelTest, SpTMMMatchesSpMMOverTransposeBitwise) {
  // The workspace reformulation: scatter-product vs parallel SpMM over the
  // cached transpose accumulate every output entry in the same order.
  const SparseMatrix xt = x_.Transposed();
  const DenseMatrix scatter = SpTMM(x_, tall_);
  ScopedNumThreads parallel(4);
  EXPECT_EQ(SpMM(xt, tall_), scatter);
}

/// Reductions: fixed-grain chunking makes every thread count (including 1)
/// agree bitwise; the tolerance checks below additionally tie the chunked
/// result to the plain serial accumulation it replaced.
/// tests/thread_budget_test.cc holds the exhaustive any-width bit-identity
/// coverage.
class ReductionKernelTest : public ::testing::Test {
 protected:
  ReductionKernelTest()
      : rng_(21),
        u_(DenseMatrix::Random(kRows, kK, &rng_, 0.0, 1.0)),
        v_(DenseMatrix::Random(kCols, kK, &rng_, 0.0, 1.0)),
        x_(RandomSparse(kRows, kCols, 0.01, &rng_)) {}

  Rng rng_;
  DenseMatrix u_;
  DenseMatrix v_;
  SparseMatrix x_;
};

TEST_F(ReductionKernelTest, MatMulAtBWithinTolerance) {
  ScopedNumThreads serial(1);
  const DenseMatrix expected = MatMulAtB(u_, u_);
  ScopedNumThreads parallel(4);
  const DenseMatrix actual = MatMulAtB(u_, u_);
  ASSERT_EQ(actual.rows(), expected.rows());
  ASSERT_EQ(actual.cols(), expected.cols());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual.data()[i], expected.data()[i],
                1e-12 * std::fabs(expected.data()[i]) + 1e-12);
  }
}

TEST_F(ReductionKernelTest, MatMulAtBDeterministicAcrossThreadCounts) {
  DenseMatrix results[3];
  int idx = 0;
  for (int t : {1, 2, 4}) {
    ScopedNumThreads threads(t);
    results[idx++] = MatMulAtB(u_, u_);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

TEST_F(ReductionKernelTest, FrobeniusNormSquaredWithinTolerance) {
  ScopedNumThreads serial(1);
  const double expected = FrobeniusNormSquared(u_);
  ScopedNumThreads parallel(4);
  EXPECT_NEAR(FrobeniusNormSquared(u_), expected, 1e-12 * expected);
}

TEST_F(ReductionKernelTest, FactorizationLossWithinTolerance) {
  ScopedNumThreads serial(1);
  const double expected = FactorizationLossSquared(x_, u_, v_);
  ScopedNumThreads parallel(4);
  EXPECT_NEAR(FactorizationLossSquared(x_, u_, v_), expected,
              1e-12 * std::fabs(expected) + 1e-12);
}

TEST_F(ReductionKernelTest, GraphLaplacianQuadraticFormWithinTolerance) {
  Rng rng(23);
  std::vector<UserGraph::Edge> edges;
  for (size_t i = 0; i < 4 * kRows; ++i) {
    edges.push_back({rng.NextUint64Below(kRows), rng.NextUint64Below(kRows),
                     rng.Uniform(0.1, 1.0)});
  }
  const UserGraph gu = UserGraph::FromEdges(kRows, edges);
  ScopedNumThreads serial(1);
  const double expected =
      GraphLaplacianQuadraticForm(gu.adjacency(), gu.degrees(), u_);
  ScopedNumThreads parallel(4);
  EXPECT_NEAR(GraphLaplacianQuadraticForm(gu.adjacency(), gu.degrees(), u_),
              expected, 1e-10 * std::fabs(expected) + 1e-10);
}

/// Full solver: a 4-thread offline fit must match the serial fit (the
/// fixed-grain reductions and row-partitioned updates are width-invariant;
/// thread_budget_test pins the stronger bitwise form of this guarantee).
TEST(ParallelSolverTest, OfflineFitMatchesSerial) {
  const SmallProblem p = MakeSmallProblem();
  TriClusterConfig config;
  config.max_iterations = 15;
  config.num_threads = 1;
  const TriClusterResult serial = OfflineTriClusterer(config).Run(p.data, p.sf0);
  config.num_threads = 4;
  const TriClusterResult parallel =
      OfflineTriClusterer(config).Run(p.data, p.sf0);

  ASSERT_EQ(parallel.iterations, serial.iterations);
  auto expect_near = [](const DenseMatrix& a, const DenseMatrix& b) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a.data()[i], b.data()[i],
                  1e-9 * std::fabs(b.data()[i]) + 1e-12);
    }
  };
  expect_near(parallel.sp, serial.sp);
  expect_near(parallel.su, serial.su);
  expect_near(parallel.sf, serial.sf);
  expect_near(parallel.hp, serial.hp);
  expect_near(parallel.hu, serial.hu);
}

/// The solver resolves threads per fit and restores the global setting.
TEST(ParallelSolverTest, FitRestoresGlobalThreadSetting) {
  SetNumThreads(3);
  const SmallProblem p = MakeSmallProblem();
  TriClusterConfig config;
  config.max_iterations = 2;
  config.num_threads = 2;
  OfflineTriClusterer(config).Run(p.data, p.sf0);
  EXPECT_EQ(GetNumThreads(), 3);
  SetNumThreads(1);
}

/// Workspace reuse must not change any result: one workspace carried across
/// two full update sweeps (even over *different* problems, forcing scratch
/// reshapes) gives bitwise the same factors as fresh allocations per call.
TEST(UpdateWorkspaceTest, ReuseAcrossSweepsMatchesFreshAllocations) {
  const SmallProblem problems[2] = {MakeSmallProblem(5), MakeSmallProblem(6)};
  update::UpdateWorkspace shared;

  for (const SmallProblem& p : problems) {
    Rng rng(31);
    const size_t n = p.data.num_tweets();
    const size_t m = p.data.num_users();
    const size_t l = p.data.num_features();
    DenseMatrix sp_ws = RandomPositive(n, 3, &rng);
    DenseMatrix su_ws = RandomPositive(m, 3, &rng);
    DenseMatrix sf_ws = RandomPositive(l, 3, &rng);
    DenseMatrix hp_ws = RandomPositive(3, 3, &rng);
    DenseMatrix hu_ws = RandomPositive(3, 3, &rng);
    DenseMatrix sp_fresh = sp_ws, su_fresh = su_ws, sf_fresh = sf_ws,
                hp_fresh = hp_ws, hu_fresh = hu_ws;

    for (int iter = 0; iter < 3; ++iter) {
      update::UpdateSp(p.data.xp, p.data.xr, sf_ws, hp_ws, su_ws, &sp_ws,
                       1e-12, 0.0, nullptr, nullptr, &shared);
      update::UpdateHp(p.data.xp, sp_ws, sf_ws, &hp_ws, 1e-12, &shared);
      update::UpdateSu(p.data.xu, p.data.xr, p.data.gu, sf_ws, hu_ws, sp_ws,
                       0.8, nullptr, nullptr, &su_ws, 1e-12, 0.0, &shared);
      update::UpdateHu(p.data.xu, su_ws, sf_ws, &hu_ws, 1e-12, &shared);
      update::UpdateSf(p.data.xp, p.data.xu, sp_ws, su_ws, hp_ws, hu_ws,
                       0.05, p.sf0, &sf_ws, 1e-12, 0.0, &shared);

      update::UpdateSp(p.data.xp, p.data.xr, sf_fresh, hp_fresh, su_fresh,
                       &sp_fresh, 1e-12);
      update::UpdateHp(p.data.xp, sp_fresh, sf_fresh, &hp_fresh, 1e-12);
      update::UpdateSu(p.data.xu, p.data.xr, p.data.gu, sf_fresh, hu_fresh,
                       sp_fresh, 0.8, nullptr, nullptr, &su_fresh, 1e-12);
      update::UpdateHu(p.data.xu, su_fresh, sf_fresh, &hu_fresh, 1e-12);
      update::UpdateSf(p.data.xp, p.data.xu, sp_fresh, su_fresh, hp_fresh,
                       hu_fresh, 0.05, p.sf0, &sf_fresh, 1e-12);
    }
    EXPECT_EQ(sp_ws, sp_fresh);
    EXPECT_EQ(su_ws, su_fresh);
    EXPECT_EQ(sf_ws, sf_fresh);
    EXPECT_EQ(hp_ws, hp_fresh);
    EXPECT_EQ(hu_ws, hu_fresh);
  }
}

/// Two consecutive offline fits (each owning a workspace internally) are
/// deterministic and independent — no state bleeds between fits.
TEST(UpdateWorkspaceTest, ConsecutiveOfflineFitsAreIdentical) {
  const SmallProblem p = MakeSmallProblem();
  TriClusterConfig config;
  config.max_iterations = 8;
  const OfflineTriClusterer clusterer(config);
  const TriClusterResult first = clusterer.Run(p.data, p.sf0);
  const TriClusterResult second = clusterer.Run(p.data, p.sf0);
  EXPECT_EQ(first.sp, second.sp);
  EXPECT_EQ(first.su, second.su);
  EXPECT_EQ(first.sf, second.sf);
  EXPECT_EQ(first.hp, second.hp);
  EXPECT_EQ(first.hu, second.hu);
}

TEST(UpdateWorkspaceTest, TransposeCacheTracksBoundMatrix) {
  Rng rng(41);
  const SparseMatrix x1 = RandomSparse(40, 30, 0.2, &rng);
  const SparseMatrix x2 = RandomSparse(25, 35, 0.2, &rng);
  update::UpdateWorkspace ws;
  using Slot = update::UpdateWorkspace::TransposeSlot;
  const SparseMatrix& t1 = ws.Transposed(Slot::kXp, x1);
  EXPECT_EQ(t1.rows(), x1.cols());
  // Same matrix: cache hit returns the same object.
  EXPECT_EQ(&ws.Transposed(Slot::kXp, x1), &t1);
  // Different matrix in the slot: rebuilt.
  const SparseMatrix& t2 = ws.Transposed(Slot::kXp, x2);
  EXPECT_EQ(t2.rows(), x2.cols());
  EXPECT_EQ(t2.cols(), x2.rows());
}

}  // namespace
}  // namespace triclust
