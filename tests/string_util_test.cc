#include "src/util/string_util.h"

#include <gtest/gtest.h>

namespace triclust {
namespace {

TEST(SplitTest, BasicDelimiter) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a\t\tb", '\t'),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), std::vector<std::string>{""});
}

TEST(SplitWhitespaceTest, DropsEmptyRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   \t\n ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, RoundTripsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(ToLowerAsciiTest, LowersOnlyAscii) {
  EXPECT_EQ(ToLowerAscii("AbC#123"), "abc#123");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("hashtag", "hash"));
  EXPECT_FALSE(StartsWith("hash", "hashtag"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "file.csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ParseDoubleTest, AcceptsValidNumbers) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_TRUE(ParseDouble("0", &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

TEST(ParseSizeTTest, AcceptsAndRejects) {
  size_t v = 0;
  EXPECT_TRUE(ParseSizeT("42", &v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(ParseSizeT(" 7 ", &v));
  EXPECT_EQ(v, 7u);
  EXPECT_FALSE(ParseSizeT("", &v));
  EXPECT_FALSE(ParseSizeT("4.2", &v));
  EXPECT_FALSE(ParseSizeT("x", &v));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "ok"), "5-ok");
  EXPECT_EQ(StrFormat("%.2f", 1.0 / 3.0), "0.33");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace triclust
