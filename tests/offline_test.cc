#include "src/core/offline.h"

#include <gtest/gtest.h>

#include "src/eval/metrics.h"
#include "src/matrix/ops.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::MakeSmallProblem;

TEST(OfflineTest, ObjectiveDescendsThenStabilizes) {
  // Each update rule is non-increasing at fixed other factors (§3.2), but
  // the composed sweep oscillates near the balance point — exactly the
  // behaviour of paper Fig. 8 ("minimizes the loss for Eq. (3) at the cost
  // of increasing the error of Eq. (2), and then vice versa"). The testable
  // property: a deep initial descent, then bounded oscillation.
  const auto p = MakeSmallProblem();
  TriClusterConfig config;
  config.max_iterations = 40;
  config.tolerance = 0.0;  // run all iterations
  const TriClusterResult r = OfflineTriClusterer(config).Run(p.data, p.sf0);
  ASSERT_GT(r.loss_history.size(), 10u);
  const double first = r.loss_history.front().Total();
  double lowest = first;
  for (const LossComponents& loss : r.loss_history) {
    lowest = std::min(lowest, loss.Total());
  }
  EXPECT_LT(lowest, 0.9 * first);  // deep descent happened
  // The early phase (before the balancing regime) is strictly decreasing.
  for (size_t i = 1; i < std::min<size_t>(8, r.loss_history.size()); ++i) {
    EXPECT_LE(r.loss_history[i].Total(),
              r.loss_history[i - 1].Total() * (1.0 + 1e-6))
        << "at iteration " << i;
  }
  // Oscillation stays near the floor rather than diverging.
  EXPECT_LE(r.loss_history.back().Total(), 1.5 * lowest);
}

TEST(OfflineTest, FactorsStayNonNegativeAndFinite) {
  const auto p = MakeSmallProblem();
  const TriClusterResult r = OfflineTriClusterer().Run(p.data, p.sf0);
  EXPECT_TRUE(IsNonNegative(r.sp));
  EXPECT_TRUE(IsNonNegative(r.su));
  EXPECT_TRUE(IsNonNegative(r.sf));
  EXPECT_TRUE(IsNonNegative(r.hp));
  EXPECT_TRUE(IsNonNegative(r.hu));
  EXPECT_TRUE(AllFinite(r.sp));
  EXPECT_TRUE(AllFinite(r.su));
  EXPECT_TRUE(AllFinite(r.sf));
}

TEST(OfflineTest, ShapesMatchProblem) {
  const auto p = MakeSmallProblem();
  const TriClusterResult r = OfflineTriClusterer().Run(p.data, p.sf0);
  EXPECT_EQ(r.sp.rows(), p.data.num_tweets());
  EXPECT_EQ(r.su.rows(), p.data.num_users());
  EXPECT_EQ(r.sf.rows(), p.data.num_features());
  EXPECT_EQ(r.sp.cols(), 3u);
  EXPECT_EQ(r.hp.rows(), 3u);
  EXPECT_EQ(r.TweetClusters().size(), p.data.num_tweets());
  EXPECT_EQ(r.UserClusters().size(), p.data.num_users());
  EXPECT_EQ(r.FeatureClusters().size(), p.data.num_features());
}

TEST(OfflineTest, RecoversSentimentAboveChance) {
  const auto p = MakeSmallProblem();
  const TriClusterResult r = OfflineTriClusterer().Run(p.data, p.sf0);
  const double tweet_acc =
      ClusteringAccuracy(r.TweetClusters(), p.data.tweet_labels);
  const double user_acc =
      ClusteringAccuracy(r.UserClusters(), p.data.user_labels);
  EXPECT_GT(tweet_acc, 0.6);
  EXPECT_GT(user_acc, 0.6);
}

TEST(OfflineTest, DeterministicForFixedSeed) {
  const auto p = MakeSmallProblem();
  TriClusterConfig config;
  config.max_iterations = 15;
  const TriClusterResult a = OfflineTriClusterer(config).Run(p.data, p.sf0);
  const TriClusterResult b = OfflineTriClusterer(config).Run(p.data, p.sf0);
  EXPECT_EQ(a.sp, b.sp);
  EXPECT_EQ(a.su, b.su);
  EXPECT_EQ(a.sf, b.sf);
}

TEST(OfflineTest, ToleranceStopsEarly) {
  const auto p = MakeSmallProblem();
  TriClusterConfig config;
  config.max_iterations = 500;
  config.tolerance = 1e-2;  // loose → early stop
  const TriClusterResult r = OfflineTriClusterer(config).Run(p.data, p.sf0);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 500);
}

TEST(OfflineTest, RandomInitAlsoConverges) {
  const auto p = MakeSmallProblem();
  TriClusterConfig config;
  config.init = InitStrategy::kRandom;
  config.max_iterations = 60;
  const TriClusterResult r = OfflineTriClusterer(config).Run(p.data, p.sf0);
  ASSERT_FALSE(r.loss_history.empty());
  EXPECT_LT(r.loss_history.back().Total(),
            r.loss_history.front().Total());
}

TEST(OfflineTest, LexiconSeededBeatsRandomInitOnAccuracy) {
  const auto p = MakeSmallProblem();
  TriClusterConfig seeded;
  seeded.max_iterations = 40;
  TriClusterConfig random = seeded;
  random.init = InitStrategy::kRandom;
  const TriClusterResult rs = OfflineTriClusterer(seeded).Run(p.data, p.sf0);
  const TriClusterResult rr = OfflineTriClusterer(random).Run(p.data, p.sf0);
  const double acc_seeded =
      ClusteringAccuracy(rs.TweetClusters(), p.data.tweet_labels);
  const double acc_random =
      ClusteringAccuracy(rr.TweetClusters(), p.data.tweet_labels);
  EXPECT_GE(acc_seeded + 0.05, acc_random);  // seeded at least comparable
}

TEST(OfflineTest, TwoClusterConfiguration) {
  const auto p = MakeSmallProblem(/*seed=*/6, /*k=*/2);
  TriClusterConfig config;
  config.num_clusters = 2;
  config.max_iterations = 30;
  const TriClusterResult r = OfflineTriClusterer(config).Run(p.data, p.sf0);
  EXPECT_EQ(r.sp.cols(), 2u);
  for (int c : r.TweetClusters()) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 2);
  }
}

TEST(OfflineTest, ZeroRegularizationWeights) {
  const auto p = MakeSmallProblem();
  TriClusterConfig config;
  config.alpha = 0.0;
  config.beta = 0.0;
  config.max_iterations = 20;
  const TriClusterResult r = OfflineTriClusterer(config).Run(p.data, p.sf0);
  ASSERT_FALSE(r.loss_history.empty());
  EXPECT_DOUBLE_EQ(r.loss_history.back().lexicon_loss, 0.0);
  EXPECT_DOUBLE_EQ(r.loss_history.back().graph_loss, 0.0);
  EXPECT_LT(r.loss_history.back().Total(), r.loss_history.front().Total());
}

TEST(OfflineTest, LossComponentsAllNonNegative) {
  const auto p = MakeSmallProblem();
  const TriClusterResult r = OfflineTriClusterer().Run(p.data, p.sf0);
  for (const LossComponents& loss : r.loss_history) {
    EXPECT_GE(loss.xp_loss, 0.0);
    EXPECT_GE(loss.xu_loss, 0.0);
    EXPECT_GE(loss.xr_loss, 0.0);
    EXPECT_GE(loss.lexicon_loss, 0.0);
    EXPECT_GE(loss.graph_loss, -1e-9);
    EXPECT_DOUBLE_EQ(loss.temporal_user_loss, 0.0);
  }
}

TEST(OfflineTest, TrackLossOffKeepsHistoryEmpty) {
  const auto p = MakeSmallProblem();
  TriClusterConfig config;
  config.track_loss = false;
  config.max_iterations = 5;
  const TriClusterResult r = OfflineTriClusterer(config).Run(p.data, p.sf0);
  EXPECT_TRUE(r.loss_history.empty());
  EXPECT_EQ(r.iterations, 5);
}

/// Ablation property: removing the Xr coupling (the term the paper adds over
/// Gao et al.'s split formulation) must not *improve* user-level accuracy on
/// homophilous data with noisy tweets.
TEST(OfflineTest, CouplingTermHelpsUserAccuracy) {
  const auto p = MakeSmallProblem(/*seed=*/12);
  TriClusterConfig config;
  config.max_iterations = 50;
  const TriClusterResult full = OfflineTriClusterer(config).Run(p.data, p.sf0);

  // Decoupled variant: empty Xr (user–tweet edges removed).
  DatasetMatrices decoupled = p.data;
  SparseMatrix::Builder empty_xr(p.data.num_users(), p.data.num_tweets());
  decoupled.xr = empty_xr.Build();
  const TriClusterResult split =
      OfflineTriClusterer(config).Run(decoupled, p.sf0);

  const double acc_full =
      ClusteringAccuracy(full.UserClusters(), p.data.user_labels);
  const double acc_split =
      ClusteringAccuracy(split.UserClusters(), p.data.user_labels);
  EXPECT_GE(acc_full + 0.03, acc_split);
}

}  // namespace
}  // namespace triclust
