/// Tests of the replay-driven evaluation harness
/// (src/eval/timeline_eval.h): hand-computed per-day scores on the
/// checked-in sample corpus (including a day where temporal D-row user
/// labels differ from the static stance), bit-for-bit equality of the
/// replayed timeline against directly-scored per-day solves, stats
/// annotation, and the CSV export.

#include "src/eval/timeline_eval.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/snapshot_solver.h"
#include "src/data/corpus_io.h"
#include "src/data/snapshots.h"
#include "src/text/lexicon.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::MakeSmallProblem;
using testing_util::SmallProblem;

#ifndef TRICLUST_TESTDATA_DIR
#error "TRICLUST_TESTDATA_DIR must point at the repo's testdata directory"
#endif

Corpus LoadSampleCorpus() {
  auto loaded =
      ReadTsv(std::string(TRICLUST_TESTDATA_DIR) + "/sample_corpus.tsv");
  TRICLUST_CHECK(loaded.ok());
  return std::move(loaded).value();
}

OnlineConfig FastConfig() {
  OnlineConfig config;
  config.base.max_iterations = 15;
  config.base.track_loss = false;
  return config;
}

/// One-hot n×k matrix whose row argmax is exactly `clusters`.
DenseMatrix OneHot(const std::vector<int>& clusters, size_t k) {
  DenseMatrix m(clusters.size(), k);
  for (size_t i = 0; i < clusters.size(); ++i) {
    m.At(i, static_cast<size_t>(clusters[i])) = 1.0;
  }
  return m;
}

// --- hand-computed scores on testdata/sample_corpus.tsv --------------------
//
// Day 2 of the sample corpus: tweets 15..22 with labels
//   [pos, neg, pos, neg, pos, pos, neg, unlabeled]
// authored by users (in first-appearance order) [0,3,4,2,5,1,6,7]. The
// D rows give user 4 the temporal label pos on day 2 — *different* from
// its static stance neu — and leave user 7 unlabeled until day 3.

TEST(ScoreSnapshotTest, HandComputedTweetMetricsOnSampleDay2) {
  const Corpus corpus = LoadSampleCorpus();
  MatrixBuilder builder;
  builder.Fit(corpus);
  const std::vector<size_t> day2 = corpus.TweetIdsInDayRange(2, 2);
  ASSERT_EQ(day2, (std::vector<size_t>{15, 16, 17, 18, 19, 20, 21, 22}));
  const DatasetMatrices data = builder.Build(corpus, day2, 2);
  ASSERT_EQ(data.user_ids, (std::vector<size_t>{0, 3, 4, 2, 5, 1, 6, 7}));

  // Crafted assignment: cluster 0 = {t15, t17, t20, t22},
  // cluster 1 = {t16, t18, t19, t21}.
  const std::vector<int> tweet_clusters = {0, 1, 0, 1, 1, 0, 1, 0};
  const std::vector<int> user_clusters = {0, 1, 0, 1, 0, 0, 1, 1};
  TriClusterResult result;
  result.sp = OneHot(tweet_clusters, 2);
  result.su = OneHot(user_clusters, 2);

  const SnapshotScore score =
      ScoreSnapshot(corpus, data, result, /*day=*/2, /*campaign=*/0,
                    /*label_day=*/2);
  EXPECT_EQ(score.day, 2);
  EXPECT_EQ(score.label_day, 2);
  EXPECT_EQ(score.tweets, 8u);

  // Tweet level, scored = 7 (t22 is unlabeled). Cluster 0 holds 3
  // labeled tweets, all pos; cluster 1 holds 3 neg + 1 pos. Majority
  // vote: (3 + 3)/7; the best one-to-one map (c0→pos, c1→neg) agrees.
  EXPECT_EQ(score.tweets_scored, 7u);
  EXPECT_DOUBLE_EQ(score.tweet_accuracy, 6.0 / 7.0);
  EXPECT_DOUBLE_EQ(score.tweet_permutation_accuracy, 6.0 / 7.0);
  // NMI by hand: cluster sizes {3, 4}, class sizes {pos 4, neg 3},
  // joint {(c0,pos)=3, (c1,pos)=1, (c1,neg)=3}.
  const double h =
      -(3.0 / 7.0 * std::log(3.0 / 7.0) + 4.0 / 7.0 * std::log(4.0 / 7.0));
  const double mi = 6.0 / 7.0 * std::log(7.0 / 4.0) +
                    1.0 / 7.0 * std::log(7.0 / 16.0);
  EXPECT_NEAR(score.tweet_nmi, mi / h, 1e-12);

  // User level, scored = 7 (user 7 has no label on day 2). With the
  // *temporal* day-2 labels, cluster 0 = {u0, u4, u5, u1} is all pos —
  // user 4's D row (pos) overrides its static neu — and cluster 1 =
  // {u3, u2, u6} is all neg: a perfect partition.
  EXPECT_EQ(score.users_scored, 7u);
  EXPECT_DOUBLE_EQ(score.user_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(score.user_permutation_accuracy, 1.0);
  EXPECT_NEAR(score.user_nmi, 1.0, 1e-12);

  // The same assignment scored against the *static* stances (label_day
  // -1) loses user 4: cluster 0 becomes {pos, neu, pos, pos} → 6/7.
  // This pins that per-day scoring really consumes the D rows.
  const SnapshotScore static_score =
      ScoreSnapshot(corpus, data, result, 2, 0, /*label_day=*/-1);
  EXPECT_EQ(static_score.users_scored, 7u);
  EXPECT_DOUBLE_EQ(static_score.user_accuracy, 6.0 / 7.0);
}

TEST(ScoreSnapshotTest, UserSevenBecomesScorableOnDayThree) {
  // Day 3: user 7 (static unlabeled) gains a temporal neg label, so the
  // scored-user count grows from 7 to 8 — the timeline reflects labels
  // arriving over time, not just the static table.
  const Corpus corpus = LoadSampleCorpus();
  MatrixBuilder builder;
  builder.Fit(corpus);
  const std::vector<size_t> day3 = corpus.TweetIdsInDayRange(3, 3);
  const DatasetMatrices data = builder.Build(corpus, day3, 3);
  ASSERT_EQ(data.num_users(), 8u);

  std::vector<int> user_clusters(data.num_users(), 0);
  TriClusterResult result;
  result.sp = OneHot(std::vector<int>(data.num_tweets(), 0), 2);
  result.su = OneHot(user_clusters, 2);
  const SnapshotScore score = ScoreSnapshot(corpus, data, result, 3, 0, 3);
  EXPECT_EQ(score.users_scored, 8u);
}

// --- end-to-end: replayed timeline == directly scored per-day solve --------

void ExpectSameScore(const SnapshotScore& got, const SnapshotScore& expected,
                     const std::string& context) {
  EXPECT_EQ(got.day, expected.day) << context;
  EXPECT_EQ(got.label_day, expected.label_day) << context;
  EXPECT_EQ(got.tweets, expected.tweets) << context;
  EXPECT_EQ(got.tweets_scored, expected.tweets_scored) << context;
  EXPECT_EQ(got.users, expected.users) << context;
  EXPECT_EQ(got.users_scored, expected.users_scored) << context;
  // Bit-for-bit: identical factors scored by the identical kernel.
  EXPECT_EQ(got.tweet_accuracy, expected.tweet_accuracy) << context;
  EXPECT_EQ(got.tweet_permutation_accuracy,
            expected.tweet_permutation_accuracy)
      << context;
  EXPECT_EQ(got.tweet_nmi, expected.tweet_nmi) << context;
  EXPECT_EQ(got.user_accuracy, expected.user_accuracy) << context;
  EXPECT_EQ(got.user_permutation_accuracy,
            expected.user_permutation_accuracy)
      << context;
  EXPECT_EQ(got.user_nmi, expected.user_nmi) << context;
}

TEST(TimelineEvaluatorTest, ReplayedTimelineMatchesDirectScoringBitwise) {
  const Corpus corpus = LoadSampleCorpus();
  MatrixBuilder builder;
  builder.Fit(corpus);
  const DenseMatrix sf0 =
      SentimentLexicon::BuiltinEnglish().BuildSf0(builder.vocabulary(), 3);

  serving::CampaignEngine engine;
  engine.AddCampaign("sample", FastConfig(), sf0, builder, &corpus).ValueOrDie();
  serving::ReplayDriver driver(&engine);
  driver.AddStream(0, corpus);
  TimelineEvaluator evaluator(&engine);
  evaluator.Attach(&driver);
  serving::ReplayStats stats = driver.Replay();
  evaluator.Annotate(&stats);

  const auto& scores = evaluator.timelines()[0].scores;
  const auto splits = SplitByDay(corpus);
  ASSERT_EQ(scores.size(), splits.size());

  const SnapshotSolver solver(FastConfig(), sf0);
  StreamState state;
  for (size_t day = 0; day < splits.size(); ++day) {
    const DatasetMatrices data =
        builder.Build(corpus, splits[day].tweet_ids, splits[day].last_day);
    const TriClusterResult expected = solver.Solve(data, &state);
    const SnapshotScore direct =
        ScoreSnapshot(corpus, data, expected, static_cast<int>(day), 0,
                      splits[day].last_day);
    ExpectSameScore(scores[day], direct, "day " + std::to_string(day));
    // Every sample-corpus day carries labeled tweets and users.
    EXPECT_GT(scores[day].tweets_scored, 0u);
    EXPECT_GT(scores[day].users_scored, 0u);
  }

  // Annotate() mirrored the per-day values into the replay stats (one
  // campaign → the day micro-average is that campaign's score).
  ASSERT_EQ(stats.days.size(), splits.size());
  for (size_t day = 0; day < splits.size(); ++day) {
    EXPECT_EQ(stats.days[day].tweets_scored, scores[day].tweets_scored);
    EXPECT_EQ(stats.days[day].tweet_accuracy, scores[day].tweet_accuracy);
    EXPECT_EQ(stats.days[day].user_accuracy, scores[day].user_accuracy);
    EXPECT_EQ(stats.days[day].tweet_nmi, scores[day].tweet_nmi);
    EXPECT_EQ(stats.days[day].user_nmi, scores[day].user_nmi);
  }
  EXPECT_TRUE(std::isfinite(stats.campaigns[0].tweet_accuracy));
  EXPECT_TRUE(std::isfinite(stats.campaigns[0].user_accuracy));
  EXPECT_GT(stats.campaigns[0].tweets_scored, 0u);
  EXPECT_GT(stats.campaigns[0].users_scored, 0u);

  // The run aggregate micro-averages over every scored item.
  const TimelineAggregate aggregate = evaluator.RunAggregate();
  size_t tweets_scored = 0;
  for (const SnapshotScore& s : scores) tweets_scored += s.tweets_scored;
  EXPECT_EQ(aggregate.tweets_scored, tweets_scored);
  EXPECT_EQ(aggregate.snapshots, scores.size());
  EXPECT_TRUE(std::isfinite(aggregate.tweet_accuracy));
  EXPECT_GE(aggregate.tweet_permutation_accuracy, 0.0);
  EXPECT_LE(aggregate.tweet_accuracy, 1.0);
}

TEST(TimelineEvaluatorTest, AttachingEvaluatorPreservesReplayFactors) {
  // The observer hook must be purely observational: factors replayed
  // with an evaluator attached are bit-identical to factors replayed
  // without one.
  SmallProblem problem = MakeSmallProblem(5);
  const Corpus& corpus = problem.dataset.corpus;

  auto run = [&](bool with_evaluator) {
    serving::CampaignEngine engine;
    engine.AddCampaign("c0", FastConfig(), problem.sf0, problem.builder,
                       &corpus).ValueOrDie();
    serving::ReplayDriver driver(&engine);
    driver.AddStream(0, corpus);
    TimelineEvaluator evaluator(&engine);
    if (with_evaluator) evaluator.Attach(&driver);
    std::vector<TriClusterResult> results;
    driver.set_snapshot_callback(
        [&](int, const serving::CampaignEngine::SnapshotReport& r) {
          results.push_back(r.result);
        });
    driver.Replay();
    return results;
  };

  const auto plain = run(false);
  const auto observed = run(true);
  ASSERT_EQ(plain.size(), observed.size());
  ASSERT_FALSE(plain.empty());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].sp, observed[i].sp) << i;
    EXPECT_EQ(plain[i].su, observed[i].su) << i;
    EXPECT_EQ(plain[i].sf, observed[i].sf) << i;
  }
}

TEST(TimelineEvaluatorTest, MultiCampaignTimelinesAndCsv) {
  const Corpus corpus = LoadSampleCorpus();
  MatrixBuilder builder;
  builder.Fit(corpus);
  const DenseMatrix sf0 =
      SentimentLexicon::BuiltinEnglish().BuildSf0(builder.vocabulary(), 3);

  const auto streams = serving::PartitionIntoStreams(corpus, 2);
  serving::CampaignEngine engine;
  for (size_t s = 0; s < streams.size(); ++s) {
    engine.AddCampaign("topic-" + std::to_string(s), FastConfig(), sf0,
                       builder, &corpus).ValueOrDie();
  }
  serving::ReplayDriver driver(&engine);
  for (size_t s = 0; s < streams.size(); ++s) {
    driver.AddStream(s, streams[s]);
  }
  TimelineEvaluator evaluator(&engine);
  evaluator.Attach(&driver);
  const serving::ReplayStats stats = driver.Replay();

  ASSERT_EQ(evaluator.timelines().size(), 2u);
  size_t total_scored_snapshots = 0;
  for (const CampaignTimeline& timeline : evaluator.timelines()) {
    EXPECT_FALSE(timeline.scores.empty());
    total_scored_snapshots += timeline.scores.size();
  }
  EXPECT_EQ(total_scored_snapshots, stats.total_fits);

  std::ostringstream csv;
  evaluator.WriteCsv(csv);
  const std::string text = csv.str();
  // Header + one line per fitted snapshot; no NaNs leak into the CSV.
  EXPECT_EQ(static_cast<size_t>(
                std::count(text.begin(), text.end(), '\n')),
            total_scored_snapshots + 1);
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(text.find("day,campaign,name,label_day"), 0u);
}

}  // namespace
}  // namespace triclust
