/// Equivalence suite for the kernel-dispatch layer (src/matrix/kernels.h):
/// every public kernel is run under every KernelMode across a sweep of
/// cluster counts k ∈ {1, 2, 3, 4, 7} (covering each fixed-k unroll, the
/// wide AVX2 bodies, and the generic fallback) and ragged shapes, and
/// compared against the kScalar reference loops. The kAuto tier must match
/// BITWISE — that is the contract that lets it be the default without
/// perturbing any historical result; kFast only within tolerance.

#include "src/matrix/kernel_dispatch.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/config.h"
#include "src/core/offline.h"
#include "src/matrix/dense_matrix.h"
#include "src/matrix/kernels.h"
#include "src/matrix/ops.h"
#include "src/matrix/sparse_matrix.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::RandomSparse;

/// Bitwise equality that treats NaN payloads as bytes (operator== on the
/// data would reject NaN == NaN).
void ExpectBitEqual(const DenseMatrix& got, const DenseMatrix& want,
                    const char* label) {
  ASSERT_EQ(got.rows(), want.rows()) << label;
  ASSERT_EQ(got.cols(), want.cols()) << label;
  EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(double)),
            0)
      << label;
}

void ExpectNear(const DenseMatrix& got, const DenseMatrix& want, double tol,
                const char* label) {
  ASSERT_EQ(got.rows(), want.rows()) << label;
  ASSERT_EQ(got.cols(), want.cols()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], tol) << label << " at " << i;
  }
}

/// Dense matrix with mixed signs and a sprinkling of exact zeros, so the
/// a(i,p) == 0 skip of the generic loops (which the specialized bodies must
/// reproduce) actually triggers.
DenseMatrix MixedDense(size_t rows, size_t cols, Rng* rng) {
  DenseMatrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    const double u = rng->Uniform(0.0, 1.0);
    m.data()[i] = u < 0.15 ? 0.0 : (u - 0.5) * 4.0;
  }
  return m;
}

struct ModeCase {
  KernelMode mode;
  bool bitwise;  ///< must match kScalar bit-for-bit
  const char* name;
};

const ModeCase kModes[] = {
    {KernelMode::kScalar, true, "scalar"},
    {KernelMode::kAuto, true, "auto"},
    {KernelMode::kFast, false, "fast"},
};

const size_t kKSweep[] = {1, 2, 3, 4, 7};

class KernelEquivalenceTest : public ::testing::TestWithParam<ModeCase> {};

TEST_P(KernelEquivalenceTest, SpMMMatchesReference) {
  const ModeCase mode = GetParam();
  Rng rng(11);
  for (const size_t k : kKSweep) {
    // Ragged row population (density sweep) including empty rows.
    const SparseMatrix x = RandomSparse(97, 53, 0.11, &rng);
    const DenseMatrix d = MixedDense(53, k, &rng);
    DenseMatrix want;
    {
      ScopedKernelMode scalar(KernelMode::kScalar);
      SpMMInto(x, d, &want);
    }
    ScopedKernelMode scope(mode.mode);
    DenseMatrix got;
    SpMMInto(x, d, &got);
    if (mode.bitwise) {
      ExpectBitEqual(got, want, "SpMM");
    } else {
      ExpectNear(got, want, 1e-12, "SpMM");
    }
  }
}

TEST_P(KernelEquivalenceTest, MatMulAtBMatchesReferenceBothPaths) {
  const ModeCase mode = GetParam();
  Rng rng(12);
  // rows ≤ kReduceRowGrain takes the direct path; rows > kReduceRowGrain
  // the chunked-partials reduction. Both must agree with the reference.
  for (const size_t rows : {37u, static_cast<unsigned>(kReduceRowGrain) + 77u}) {
    for (const size_t k : kKSweep) {
      const DenseMatrix a = MixedDense(rows, k, &rng);
      const DenseMatrix b = MixedDense(rows, k, &rng);
      DenseMatrix want;
      {
        ScopedKernelMode scalar(KernelMode::kScalar);
        MatMulAtBInto(a, b, &want);
      }
      ScopedKernelMode scope(mode.mode);
      DenseMatrix got;
      MatMulAtBInto(a, b, &got);
      if (mode.bitwise) {
        ExpectBitEqual(got, want, "MatMulAtB");
      } else {
        ExpectNear(got, want, 1e-9, "MatMulAtB");
      }
    }
  }
  // Rectangular ka≠kb falls back generically in every mode.
  const DenseMatrix a = MixedDense(64, 3, &rng);
  const DenseMatrix b = MixedDense(64, 7, &rng);
  DenseMatrix want;
  {
    ScopedKernelMode scalar(KernelMode::kScalar);
    MatMulAtBInto(a, b, &want);
  }
  ScopedKernelMode scope(mode.mode);
  DenseMatrix got;
  MatMulAtBInto(a, b, &got);
  ExpectBitEqual(got, want, "MatMulAtB ragged");
}

TEST_P(KernelEquivalenceTest, MatMulMatchesReference) {
  const ModeCase mode = GetParam();
  Rng rng(13);
  for (const size_t k : kKSweep) {
    const DenseMatrix a = MixedDense(41, k, &rng);
    const DenseMatrix b = MixedDense(k, k, &rng);
    DenseMatrix want;
    {
      ScopedKernelMode scalar(KernelMode::kScalar);
      MatMulInto(a, b, &want);
    }
    ScopedKernelMode scope(mode.mode);
    DenseMatrix got;
    MatMulInto(a, b, &got);
    ExpectBitEqual(got, want, "MatMul fixed-k");
  }
  // Large panel: exercises the L2-blocked body (bit-identical tier).
  const DenseMatrix a = MixedDense(80, 300, &rng);
  const DenseMatrix b = MixedDense(300, 70, &rng);
  DenseMatrix want;
  {
    ScopedKernelMode scalar(KernelMode::kScalar);
    MatMulInto(a, b, &want);
  }
  ScopedKernelMode scope(mode.mode);
  DenseMatrix got;
  MatMulInto(a, b, &got);
  ExpectBitEqual(got, want, "MatMul blocked");
}

TEST_P(KernelEquivalenceTest, MatMulABtMatchesReference) {
  const ModeCase mode = GetParam();
  Rng rng(14);
  for (const size_t k : kKSweep) {
    const DenseMatrix a = MixedDense(33, k, &rng);
    const DenseMatrix b = MixedDense(29, k, &rng);
    DenseMatrix want;
    {
      ScopedKernelMode scalar(KernelMode::kScalar);
      MatMulABtInto(a, b, &want);
    }
    ScopedKernelMode scope(mode.mode);
    DenseMatrix got;
    MatMulABtInto(a, b, &got);
    ExpectBitEqual(got, want, "MatMulABt");
  }
}

TEST_P(KernelEquivalenceTest, ReductionsMatchReference) {
  const ModeCase mode = GetParam();
  Rng rng(15);
  const DenseMatrix a = MixedDense(201, 7, &rng);
  const DenseMatrix b = MixedDense(201, 7, &rng);
  double want_norm, want_dist, want_trace;
  {
    ScopedKernelMode scalar(KernelMode::kScalar);
    want_norm = FrobeniusNormSquared(a);
    want_dist = FrobeniusDistanceSquared(a, b);
    want_trace = TraceAtB(a, b);
  }
  ScopedKernelMode scope(mode.mode);
  if (mode.bitwise) {
    EXPECT_EQ(FrobeniusNormSquared(a), want_norm);
    EXPECT_EQ(FrobeniusDistanceSquared(a, b), want_dist);
    EXPECT_EQ(TraceAtB(a, b), want_trace);
  } else {
    EXPECT_NEAR(FrobeniusNormSquared(a), want_norm, 1e-9);
    EXPECT_NEAR(FrobeniusDistanceSquared(a, b), want_dist, 1e-9);
    EXPECT_NEAR(TraceAtB(a, b), want_trace, 1e-9);
  }
}

TEST_P(KernelEquivalenceTest, SparseLossesMatchReference) {
  const ModeCase mode = GetParam();
  Rng rng(16);
  for (const size_t k : kKSweep) {
    const SparseMatrix x = RandomSparse(120, 90, 0.07, &rng);
    const DenseMatrix u = testing_util::RandomPositive(120, k, &rng);
    const DenseMatrix v = testing_util::RandomPositive(90, k, &rng);
    const SparseMatrix g = RandomSparse(60, 60, 0.1, &rng);
    std::vector<double> degrees(60);
    for (double& deg : degrees) deg = rng.Uniform(0.0, 5.0);
    const DenseMatrix s = testing_util::RandomPositive(60, k, &rng);
    double want_loss, want_quad;
    {
      ScopedKernelMode scalar(KernelMode::kScalar);
      want_loss = FactorizationLossSquared(x, u, v);
      want_quad = GraphLaplacianQuadraticForm(g, degrees, s);
    }
    ScopedKernelMode scope(mode.mode);
    if (mode.bitwise) {
      EXPECT_EQ(FactorizationLossSquared(x, u, v), want_loss) << "k=" << k;
      EXPECT_EQ(GraphLaplacianQuadraticForm(g, degrees, s), want_quad)
          << "k=" << k;
    } else {
      EXPECT_NEAR(FactorizationLossSquared(x, u, v), want_loss,
                  1e-9 * (1.0 + std::fabs(want_loss)))
          << "k=" << k;
      EXPECT_NEAR(GraphLaplacianQuadraticForm(g, degrees, s), want_quad,
                  1e-9 * (1.0 + std::fabs(want_quad)))
          << "k=" << k;
    }
  }
}

TEST_P(KernelEquivalenceTest, MultiplicativeUpdateMatchesReference) {
  const ModeCase mode = GetParam();
  Rng rng(17);
  for (const size_t cols : kKSweep) {
    const DenseMatrix m0 = testing_util::RandomPositive(83, cols, &rng);
    const DenseMatrix numer = MixedDense(83, cols, &rng);
    const DenseMatrix denom = MixedDense(83, cols, &rng);
    for (const double eps : {0.0, 1e-12, 1e-9}) {
      DenseMatrix want = m0;
      {
        ScopedKernelMode scalar(KernelMode::kScalar);
        MultiplicativeUpdateInPlace(&want, numer, denom, eps);
      }
      ScopedKernelMode scope(mode.mode);
      DenseMatrix got = m0;
      MultiplicativeUpdateInPlace(&got, numer, denom, eps);
      // The multiplicative step is in the bit-identical tier in every mode
      // (per-lane IEEE max/add/div/sqrt — no reassociation to exploit).
      ExpectBitEqual(got, want, "MultiplicativeUpdate");
    }
  }
}

/// Denormal / signed-zero / NaN edge cases of the guarded multiplicative
/// step, checked bitwise across all modes.
TEST_P(KernelEquivalenceTest, MultiplicativeUpdateEdgeCases) {
  const ModeCase mode = GetParam();
  const double kDenormMin = std::numeric_limits<double>::denorm_min();
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  // 8 elements so the AVX2 body runs two full vector lanes; plus a ragged
  // 5th column variant exercises the scalar tail.
  for (const size_t cols : {8u, 5u}) {
    DenseMatrix m0(3, cols), numer(3, cols), denom(3, cols);
    const double numer_vals[] = {0.0,  -0.0, kDenormMin, 1e-310,
                                 -1.0, kNan, 1e300,      4.9e-324};
    const double denom_vals[] = {0.0,    kDenormMin, -0.0, -1e-310,
                                 -301.0, 2.0,        kNan, 0.5};
    for (size_t i = 0; i < m0.size(); ++i) {
      m0.data()[i] = 0.75 + 0.5 * static_cast<double>(i % 7);
      numer.data()[i] = numer_vals[i % 8];
      denom.data()[i] = denom_vals[i % 8];
    }
    for (const double eps : {0.0, 1e-12}) {
      DenseMatrix want = m0;
      {
        ScopedKernelMode scalar(KernelMode::kScalar);
        MultiplicativeUpdateInPlace(&want, numer, denom, eps);
      }
      ScopedKernelMode scope(mode.mode);
      DenseMatrix got = m0;
      MultiplicativeUpdateInPlace(&got, numer, denom, eps);
      ExpectBitEqual(got, want, "MultiplicativeUpdate edge cases");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, KernelEquivalenceTest,
                         ::testing::ValuesIn(kModes),
                         [](const ::testing::TestParamInfo<ModeCase>& param) {
                           return std::string(param.param.name);
                         });

/// The end-to-end contract: a full offline fit under the default kAuto
/// dispatch reproduces the kScalar factors bit-for-bit.
TEST(KernelDispatchSolverTest, OfflineFitBitwiseEqualAcrossAutoAndScalar) {
  testing_util::SmallProblem p = testing_util::MakeSmallProblem();
  TriClusterConfig config;
  config.max_iterations = 8;
  config.track_loss = false;

  config.kernel_mode = KernelMode::kScalar;
  const TriClusterResult scalar = OfflineTriClusterer(config).Run(p.data, p.sf0);
  config.kernel_mode = KernelMode::kAuto;
  const TriClusterResult autod = OfflineTriClusterer(config).Run(p.data, p.sf0);

  EXPECT_TRUE(autod.sp == scalar.sp);
  EXPECT_TRUE(autod.su == scalar.su);
  EXPECT_TRUE(autod.sf == scalar.sf);
  EXPECT_TRUE(autod.hp == scalar.hp);
  EXPECT_TRUE(autod.hu == scalar.hu);
}

TEST(KernelDispatchTest, ScalarModeDisablesEverything) {
  ScopedKernelMode scope(KernelMode::kScalar);
  const KernelDispatch d = ActiveDispatch();
  EXPECT_FALSE(d.fixed_k);
  EXPECT_FALSE(d.avx2);
  EXPECT_FALSE(d.fast);
}

/// Clears TRICLUST_FORCE_SCALAR for one test body (the CI force-scalar leg
/// exports it suite-wide, which would pin ActiveKernelMode to kScalar and
/// vacuously break the mode-introspection expectations below).
class ScopedClearForceScalar {
 public:
  ScopedClearForceScalar() {
    const char* value = std::getenv("TRICLUST_FORCE_SCALAR");
    if (value != nullptr) saved_ = value;
    had_value_ = value != nullptr;
    unsetenv("TRICLUST_FORCE_SCALAR");
    internal::ReprobeKernelEnvForTesting();
  }
  ~ScopedClearForceScalar() {
    if (had_value_) setenv("TRICLUST_FORCE_SCALAR", saved_.c_str(), 1);
    internal::ReprobeKernelEnvForTesting();
  }

 private:
  bool had_value_ = false;
  std::string saved_;
};

TEST(KernelDispatchTest, AutoNeverEnablesFastTier) {
  ScopedClearForceScalar no_env;
  ScopedKernelMode scope(KernelMode::kAuto);
  const KernelDispatch d = ActiveDispatch();
  EXPECT_TRUE(d.fixed_k);
  EXPECT_FALSE(d.fast);
  // avx2 depends on host + compiler; just check consistency.
  EXPECT_EQ(d.avx2, CpuSupportsAvx2() && Avx2KernelsCompiled());
}

TEST(KernelDispatchTest, ScopedModeNestsAndRestores) {
  ScopedClearForceScalar no_env;
  const KernelMode ambient = ActiveKernelMode();
  {
    ScopedKernelMode outer(KernelMode::kScalar);
    EXPECT_EQ(ActiveKernelMode(), KernelMode::kScalar);
    {
      ScopedKernelMode inner(KernelMode::kFast);
      EXPECT_EQ(ActiveKernelMode(), KernelMode::kFast);
    }
    EXPECT_EQ(ActiveKernelMode(), KernelMode::kScalar);
  }
  EXPECT_EQ(ActiveKernelMode(), ambient);
}

TEST(KernelDispatchTest, ForceScalarEnvOverridesEverything) {
  ScopedClearForceScalar restore_after;
  ASSERT_EQ(setenv("TRICLUST_FORCE_SCALAR", "1", 1), 0);
  internal::ReprobeKernelEnvForTesting();
  {
    ScopedKernelMode scope(KernelMode::kFast);
    EXPECT_EQ(ActiveKernelMode(), KernelMode::kScalar);
    const KernelDispatch d = ActiveDispatch();
    EXPECT_FALSE(d.fixed_k);
    EXPECT_FALSE(d.avx2);
    EXPECT_FALSE(d.fast);
  }
  // "0" and empty mean off.
  ASSERT_EQ(setenv("TRICLUST_FORCE_SCALAR", "0", 1), 0);
  internal::ReprobeKernelEnvForTesting();
  {
    ScopedKernelMode scope(KernelMode::kFast);
    EXPECT_EQ(ActiveKernelMode(), KernelMode::kFast);
  }
  ASSERT_EQ(unsetenv("TRICLUST_FORCE_SCALAR"), 0);
  internal::ReprobeKernelEnvForTesting();
}

// --- dispatch-table coverage -------------------------------------------------
// Pins the Select* tables body by body: every kernel declared in
// src/matrix/kernels.h must be the selection for some (mode, shape) here.
// tools/lint_invariants.py enforces the converse textually (a body added
// to kernels.h without an expectation below fails the kernel-coverage
// rule), so the two files cannot drift apart silently.

TEST(KernelDispatchTableTest, SelectorsCoverEveryDeclaredBody) {
  using namespace kernels;  // NOLINT(build/namespaces) — table readability
  ScopedClearForceScalar no_env;
  const bool avx2 = CpuSupportsAvx2() && kernels::Avx2KernelsCompiled();
  const bool fast = avx2 && CpuSupportsFma();

  {
    // kScalar: every selector returns its generic reference loop.
    ScopedKernelMode scalar(KernelMode::kScalar);
    EXPECT_EQ(SelectSpMMRows(3), &GenericSpMMRows);
    EXPECT_EQ(SelectAtBAccumulate(3, 3), &GenericAtBAccumulate);
    EXPECT_EQ(SelectMatMulRows(3, 3), &GenericMatMulRows);
    EXPECT_EQ(SelectABtRows(3), &GenericABtRows);
    EXPECT_EQ(SelectMulUpdateRange(), &GenericMulUpdateRange);
    EXPECT_EQ(SelectDotRange(), &GenericDotRange);
    EXPECT_EQ(SelectDiffSquaredRange(), &GenericDiffSquaredRange);
    EXPECT_EQ(SelectSpCrossRows(3), &GenericSpCrossRows);
  }
  {
    // kAuto: fixed-k unrolls, upgraded to the bit-identical AVX2 bodies
    // when the CPU and the kernel TU both have them.
    ScopedKernelMode auto_mode(KernelMode::kAuto);
    EXPECT_EQ(SelectSpMMRows(2), avx2 ? &Avx2SpMMRowsK2 : &SpMMRowsK2);
    EXPECT_EQ(SelectSpMMRows(3), avx2 ? &Avx2SpMMRowsK3 : &SpMMRowsK3);
    EXPECT_EQ(SelectSpMMRows(4), avx2 ? &Avx2SpMMRowsK4 : &SpMMRowsK4);
    EXPECT_EQ(SelectSpMMRows(7),
              avx2 ? &Avx2SpMMRowsWide : &GenericSpMMRows);
    EXPECT_EQ(SelectAtBAccumulate(2, 2),
              avx2 ? &Avx2AtBAccumulateK2 : &AtBAccumulateK2);
    EXPECT_EQ(SelectAtBAccumulate(3, 3),
              avx2 ? &Avx2AtBAccumulateK3 : &AtBAccumulateK3);
    EXPECT_EQ(SelectAtBAccumulate(4, 4),
              avx2 ? &Avx2AtBAccumulateK4 : &AtBAccumulateK4);
    EXPECT_EQ(SelectAtBAccumulate(7, 7),
              avx2 ? &Avx2AtBAccumulateWide : &GenericAtBAccumulate);
    EXPECT_EQ(SelectMatMulRows(2, 2), &MatMulRowsK2);
    EXPECT_EQ(SelectMatMulRows(3, 3), &MatMulRowsK3);
    EXPECT_EQ(SelectMatMulRows(4, 4), &MatMulRowsK4);
    EXPECT_EQ(SelectMatMulRows(64, 64), &BlockedMatMulRows);
    EXPECT_EQ(SelectABtRows(2), &ABtRowsK2);
    EXPECT_EQ(SelectABtRows(3), &ABtRowsK3);
    EXPECT_EQ(SelectABtRows(4), &ABtRowsK4);
    EXPECT_EQ(SelectMulUpdateRange(),
              avx2 ? &Avx2MulUpdateRange : &GenericMulUpdateRange);
    EXPECT_EQ(SelectSpCrossRows(2), &SpCrossRowsK2);
    EXPECT_EQ(SelectSpCrossRows(3), &SpCrossRowsK3);
    EXPECT_EQ(SelectSpCrossRows(4), &SpCrossRowsK4);
    // The fast tier must be unreachable from kAuto.
    EXPECT_EQ(SelectDotRange(), &GenericDotRange);
    EXPECT_EQ(SelectDiffSquaredRange(), &GenericDiffSquaredRange);
  }
  {
    // kFast: the tolerance-only bodies take over their k=4 / reduction
    // slots (only with AVX2+FMA; otherwise kFast degrades to kAuto).
    ScopedKernelMode fast_mode(KernelMode::kFast);
    EXPECT_EQ(SelectSpMMRows(4),
              fast ? &FastSpMMRowsK4
                   : (avx2 ? &Avx2SpMMRowsK4 : &SpMMRowsK4));
    EXPECT_EQ(SelectAtBAccumulate(4, 4),
              fast ? &FastAtBAccumulateK4
                   : (avx2 ? &Avx2AtBAccumulateK4 : &AtBAccumulateK4));
    EXPECT_EQ(SelectDotRange(), fast ? &FastDotRange : &GenericDotRange);
    EXPECT_EQ(SelectDiffSquaredRange(),
              fast ? &FastDiffSquaredRange : &GenericDiffSquaredRange);
    EXPECT_EQ(SelectSpCrossRows(4),
              fast ? &FastSpCrossRowsK4 : &SpCrossRowsK4);
  }
}

}  // namespace
}  // namespace triclust
