#include "src/data/synthetic.h"

#include <gtest/gtest.h>

#include "src/util/string_util.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

TEST(SyntheticTest, DeterministicInSeed) {
  const SyntheticDataset a = testing_util::SmallCampaign(9);
  const SyntheticDataset b = testing_util::SmallCampaign(9);
  ASSERT_EQ(a.corpus.num_tweets(), b.corpus.num_tweets());
  for (size_t i = 0; i < a.corpus.num_tweets(); ++i) {
    EXPECT_EQ(a.corpus.tweet(i).text, b.corpus.tweet(i).text);
    EXPECT_EQ(a.corpus.tweet(i).user, b.corpus.tweet(i).user);
    EXPECT_EQ(a.corpus.tweet(i).label, b.corpus.tweet(i).label);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  const SyntheticDataset a = testing_util::SmallCampaign(1);
  const SyntheticDataset b = testing_util::SmallCampaign(2);
  bool any_diff = a.corpus.num_tweets() != b.corpus.num_tweets();
  const size_t n = std::min(a.corpus.num_tweets(), b.corpus.num_tweets());
  for (size_t i = 0; i < n && !any_diff; ++i) {
    any_diff |= a.corpus.tweet(i).text != b.corpus.tweet(i).text;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, RespectsPopulationConfig) {
  SyntheticConfig config;
  config.num_users = 77;
  config.num_days = 5;
  config.base_tweets_per_day = 50.0;
  config.burst_days = {};
  const SyntheticDataset d = GenerateSynthetic(config);
  EXPECT_EQ(d.corpus.num_users(), 77u);
  EXPECT_EQ(d.corpus.num_days(), 5);
  // Poisson(50) per day over 5 days: comfortably within [150, 400].
  EXPECT_GT(d.corpus.num_tweets(), 150u);
  EXPECT_LT(d.corpus.num_tweets(), 400u);
}

TEST(SyntheticTest, EveryTweetHasLabelAndValidAuthor) {
  const SyntheticDataset d = testing_util::SmallCampaign();
  for (const Tweet& t : d.corpus.tweets()) {
    EXPECT_NE(t.label, Sentiment::kUnlabeled);
    EXPECT_LT(t.user, d.corpus.num_users());
    EXPECT_GE(t.day, 0);
    EXPECT_LT(t.day, d.corpus.num_days());
    EXPECT_FALSE(t.text.empty());
  }
}

TEST(SyntheticTest, RetweetsReferenceEarlierTweetsByOtherUsers) {
  const SyntheticDataset d = testing_util::SmallCampaign();
  size_t retweets = 0;
  for (const Tweet& t : d.corpus.tweets()) {
    if (!t.IsRetweet()) continue;
    ++retweets;
    const Tweet& original =
        d.corpus.tweet(static_cast<size_t>(t.retweet_of));
    EXPECT_LT(original.id, t.id);
    EXPECT_LE(original.day, t.day);
    EXPECT_NE(original.user, t.user);
    EXPECT_EQ(original.text, t.text);
    EXPECT_EQ(original.label, t.label);
  }
  EXPECT_GT(retweets, 20u);  // retweet_fraction 0.25 over ~1.3k tweets
}

TEST(SyntheticTest, RetweetHomophilyAboveChance) {
  const SyntheticDataset d = testing_util::SmallCampaign();
  size_t same = 0;
  size_t total = 0;
  for (const Tweet& t : d.corpus.tweets()) {
    if (!t.IsRetweet()) continue;
    const Tweet& original =
        d.corpus.tweet(static_cast<size_t>(t.retweet_of));
    ++total;
    if (d.corpus.UserSentimentAt(t.user, t.day) ==
        d.corpus.UserSentimentAt(original.user, original.day)) {
      ++same;
    }
  }
  ASSERT_GT(total, 0u);
  // homophily 0.85 with fallback paths; well above the ~0.4 chance level.
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(total), 0.6);
}

TEST(SyntheticTest, BurstDayHasHigherVolume) {
  SyntheticConfig config;
  config.seed = 3;
  config.num_users = 100;
  config.num_days = 10;
  config.base_tweets_per_day = 80.0;
  config.burst_days = {4};
  config.burst_multiplier = 5.0;
  const SyntheticDataset d = GenerateSynthetic(config);
  const size_t burst = d.corpus.TweetIdsInDayRange(4, 4).size();
  const size_t normal = d.corpus.TweetIdsInDayRange(3, 3).size();
  EXPECT_GT(burst, 2 * normal);
}

TEST(SyntheticTest, UserStancesMostlySticky) {
  const SyntheticDataset d = testing_util::SmallCampaign();
  size_t flips = 0;
  size_t steps = 0;
  for (size_t u = 0; u < d.corpus.num_users(); ++u) {
    for (int day = 1; day < d.corpus.num_days(); ++day) {
      ++steps;
      if (d.corpus.UserSentimentAt(u, day) !=
          d.corpus.UserSentimentAt(u, day - 1)) {
        ++flips;
      }
    }
  }
  // flip prob 0.015/day → on aggregate clearly below 5%.
  EXPECT_LT(static_cast<double>(flips) / static_cast<double>(steps), 0.05);
  EXPECT_GT(flips, 0u);  // but evolution does happen
}

TEST(SyntheticTest, TrueLexiconCoversPolarPools) {
  SyntheticConfig config;
  config.num_polar_words_per_class = 30;
  const SyntheticDataset d = GenerateSynthetic(config);
  EXPECT_EQ(d.true_lexicon.size(), 60u);
  EXPECT_EQ(d.true_lexicon.PolarityOf("#yeson37"), Sentiment::kPositive);
  EXPECT_EQ(d.true_lexicon.PolarityOf("#noprop37"), Sentiment::kNegative);
}

TEST(SyntheticTest, StanceSkewFollowsPrior) {
  SyntheticConfig config = Prop37LikeConfig(7);
  config.num_users = 400;
  config.num_days = 5;
  config.base_tweets_per_day = 50;
  const SyntheticDataset d = GenerateSynthetic(config);
  const auto counts = d.corpus.CountUserLabels();
  EXPECT_GT(counts.positive, 3 * counts.negative);
}

TEST(CorruptLexiconTest, FullCoverageNoErrorIsIdentity) {
  const SyntheticDataset d = testing_util::SmallCampaign();
  const SentimentLexicon out = CorruptLexicon(d.true_lexicon, 1.0, 0.0, 1);
  EXPECT_EQ(out.size(), d.true_lexicon.size());
  for (const auto& [word, polarity] : d.true_lexicon.Entries()) {
    EXPECT_EQ(out.PolarityOf(word), polarity);
  }
}

TEST(CorruptLexiconTest, CoverageShrinksLexicon) {
  const SyntheticDataset d = testing_util::SmallCampaign();
  const SentimentLexicon out = CorruptLexicon(d.true_lexicon, 0.5, 0.0, 2);
  const double ratio = static_cast<double>(out.size()) /
                       static_cast<double>(d.true_lexicon.size());
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 0.7);
}

TEST(CorruptLexiconTest, ErrorRateFlipsPolarity) {
  const SyntheticDataset d = testing_util::SmallCampaign();
  const SentimentLexicon out = CorruptLexicon(d.true_lexicon, 1.0, 1.0, 3);
  for (const auto& [word, polarity] : d.true_lexicon.Entries()) {
    EXPECT_NE(out.PolarityOf(word), polarity);
    EXPECT_NE(out.PolarityOf(word), Sentiment::kUnlabeled);
  }
}

TEST(CorruptLexiconTest, DeterministicInSeed) {
  const SyntheticDataset d = testing_util::SmallCampaign();
  const SentimentLexicon a = CorruptLexicon(d.true_lexicon, 0.6, 0.1, 11);
  const SentimentLexicon b = CorruptLexicon(d.true_lexicon, 0.6, 0.1, 11);
  EXPECT_EQ(a.size(), b.size());
  for (const auto& [word, polarity] : a.Entries()) {
    EXPECT_EQ(b.PolarityOf(word), polarity);
  }
}

TEST(SyntheticTest, OffClassNoiseProducesMisleadingTweets) {
  // The "Monsanto is pure evil" effect: some positive tweets must contain
  // negative-lexicon words.
  const SyntheticDataset d = testing_util::SmallCampaign();
  size_t misleading = 0;
  for (const Tweet& t : d.corpus.tweets()) {
    if (t.label != Sentiment::kPositive || t.IsRetweet()) continue;
    for (const auto& tok : SplitWhitespace(t.text)) {
      if (d.true_lexicon.PolarityOf(tok) == Sentiment::kNegative) {
        ++misleading;
        break;
      }
    }
  }
  EXPECT_GT(misleading, 10u);
}

}  // namespace
}  // namespace triclust
