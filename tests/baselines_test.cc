#include <gtest/gtest.h>

#include "src/baselines/aggregation.h"
#include "src/baselines/bacg.h"
#include "src/baselines/essa.h"
#include "src/baselines/label_propagation.h"
#include "src/baselines/linear_svm.h"
#include "src/baselines/naive_bayes.h"
#include "src/baselines/userreg.h"
#include "src/eval/metrics.h"
#include "src/eval/protocol.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::MakeSmallProblem;
using testing_util::SmallProblem;

const Sentiment P = Sentiment::kPositive;
const Sentiment N = Sentiment::kNegative;
const Sentiment X = Sentiment::kUnlabeled;

/// A tiny linearly-separable problem: feature 0 ⇒ positive, 1 ⇒ negative.
struct ToyProblem {
  SparseMatrix x;
  std::vector<Sentiment> labels;
};

ToyProblem MakeToy(size_t per_class = 20) {
  SparseMatrix::Builder builder(2 * per_class, 3);
  std::vector<Sentiment> labels;
  Rng rng(3);
  for (size_t i = 0; i < per_class; ++i) {
    builder.Add(i, 0, 1.0 + rng.NextDouble());
    builder.Add(i, 2, rng.NextDouble());  // shared noise feature
    labels.push_back(P);
  }
  for (size_t i = per_class; i < 2 * per_class; ++i) {
    builder.Add(i, 1, 1.0 + rng.NextDouble());
    builder.Add(i, 2, rng.NextDouble());
    labels.push_back(N);
  }
  return {builder.Build(), labels};
}

// --- Naive Bayes -------------------------------------------------------------

TEST(NaiveBayesTest, LearnsSeparableToy) {
  const ToyProblem toy = MakeToy();
  MultinomialNaiveBayes nb(2);
  nb.Train(toy.x, toy.labels);
  EXPECT_TRUE(nb.trained());
  const auto pred = nb.Predict(toy.x);
  EXPECT_DOUBLE_EQ(ClassificationAccuracy(pred, toy.labels), 1.0);
}

TEST(NaiveBayesTest, PosteriorRowsSumToOne) {
  const ToyProblem toy = MakeToy();
  MultinomialNaiveBayes nb(2);
  nb.Train(toy.x, toy.labels);
  const DenseMatrix proba = nb.PredictProba(toy.x);
  for (size_t i = 0; i < proba.rows(); ++i) {
    double total = 0.0;
    for (size_t c = 0; c < proba.cols(); ++c) {
      EXPECT_GE(proba(i, c), 0.0);
      total += proba(i, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(NaiveBayesTest, IgnoresUnlabeledRows) {
  ToyProblem toy = MakeToy();
  // Corrupt half the labels to kUnlabeled; training must still work.
  for (size_t i = 0; i < toy.labels.size(); i += 2) toy.labels[i] = X;
  MultinomialNaiveBayes nb(2);
  nb.Train(toy.x, toy.labels);
  const auto pred = nb.Predict(toy.x);
  size_t correct = 0;
  size_t total = 0;
  for (size_t i = 1; i < toy.labels.size(); i += 2) {
    ++total;
    if (pred[i] == toy.labels[i]) ++correct;
  }
  EXPECT_EQ(correct, total);
}

TEST(NaiveBayesTest, CrossValidatedAccuracyOnCampaign) {
  const SmallProblem p = MakeSmallProblem();
  const double acc = CrossValidatedAccuracy(
      p.data.tweet_labels, 5, 1, [&](const std::vector<Sentiment>& masked) {
        MultinomialNaiveBayes nb;
        nb.Train(p.data.xp, masked);
        return nb.Predict(p.data.xp);
      });
  EXPECT_GT(acc, 0.7);  // supervised NB should be strong here
}

// --- Linear SVM --------------------------------------------------------------

TEST(LinearSvmTest, LearnsSeparableToy) {
  const ToyProblem toy = MakeToy();
  SvmOptions options;
  options.num_classes = 2;
  LinearSvm svm(options);
  svm.Train(toy.x, toy.labels);
  EXPECT_TRUE(svm.trained());
  const auto pred = svm.Predict(toy.x);
  EXPECT_GT(ClassificationAccuracy(pred, toy.labels), 0.95);
}

TEST(LinearSvmTest, DecisionFunctionShape) {
  const ToyProblem toy = MakeToy();
  SvmOptions options;
  options.num_classes = 2;
  LinearSvm svm(options);
  svm.Train(toy.x, toy.labels);
  const DenseMatrix margins = svm.DecisionFunction(toy.x);
  EXPECT_EQ(margins.rows(), toy.x.rows());
  EXPECT_EQ(margins.cols(), 2u);
}

TEST(LinearSvmTest, DeterministicInSeed) {
  const ToyProblem toy = MakeToy();
  SvmOptions options;
  options.num_classes = 2;
  LinearSvm a(options);
  LinearSvm b(options);
  a.Train(toy.x, toy.labels);
  b.Train(toy.x, toy.labels);
  EXPECT_EQ(a.Predict(toy.x), b.Predict(toy.x));
}

TEST(LinearSvmTest, BeatsChanceOnCampaign) {
  const SmallProblem p = MakeSmallProblem();
  const double acc = CrossValidatedAccuracy(
      p.data.tweet_labels, 5, 2, [&](const std::vector<Sentiment>& masked) {
        LinearSvm svm;
        svm.Train(p.data.xp, masked);
        return svm.Predict(p.data.xp);
      });
  EXPECT_GT(acc, 0.6);
}

// --- Label propagation -------------------------------------------------------

TEST(LabelPropagationTest, BipartitePropagatesThroughSharedFeatures) {
  // Tweets 0 and 2 share feature 0; tweet 1 and 3 share feature 1.
  SparseMatrix::Builder builder(4, 2);
  builder.Add(0, 0, 1.0);
  builder.Add(1, 1, 1.0);
  builder.Add(2, 0, 1.0);
  builder.Add(3, 1, 1.0);
  const SparseMatrix x = builder.Build();
  const std::vector<Sentiment> seeds = {P, N, X, X};
  const auto pred = PropagateBipartite(x, seeds);
  EXPECT_EQ(pred[2], P);
  EXPECT_EQ(pred[3], N);
}

TEST(LabelPropagationTest, UnreachedItemsStayUnlabeled) {
  SparseMatrix::Builder builder(3, 2);
  builder.Add(0, 0, 1.0);
  builder.Add(1, 0, 1.0);
  // Row 2 has no features at all.
  const SparseMatrix x = builder.Build();
  const auto pred = PropagateBipartite(x, {P, X, X});
  EXPECT_EQ(pred[1], P);
  EXPECT_EQ(pred[2], X);
}

TEST(LabelPropagationTest, GraphPropagationFollowsEdges) {
  const UserGraph g = UserGraph::FromEdges(
      5, {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}});
  const std::vector<Sentiment> seeds = {P, X, X, N, X};
  const auto pred = PropagateGraph(g, seeds);
  EXPECT_EQ(pred[0], P);
  EXPECT_EQ(pred[1], P);
  EXPECT_EQ(pred[2], P);
  EXPECT_EQ(pred[3], N);
  EXPECT_EQ(pred[4], N);
}

TEST(LabelPropagationTest, IsolatedNodesStayUnlabeled) {
  const UserGraph g = UserGraph::FromEdges(3, {{0, 1, 1}});
  const auto pred = PropagateGraph(g, {P, X, X});
  EXPECT_EQ(pred[2], X);
}

TEST(LabelPropagationTest, MoreSeedsHelpOnCampaign) {
  const SmallProblem p = MakeSmallProblem();
  const auto seeds5 = SampleSeedLabels(p.data.tweet_labels, 0.05, 7);
  const auto seeds10 = SampleSeedLabels(p.data.tweet_labels, 0.10, 7);
  const auto pred5 = PropagateBipartite(p.data.xp, seeds5);
  const auto pred10 = PropagateBipartite(p.data.xp, seeds10);
  const double acc5 = ClassificationAccuracy(pred5, p.data.tweet_labels);
  const double acc10 = ClassificationAccuracy(pred10, p.data.tweet_labels);
  EXPECT_GT(acc10, 0.4);
  EXPECT_GE(acc10 + 0.08, acc5);  // typically better, always comparable
}

TEST(LabelPropagationTest, ThreadedMatchesSerialBitwise) {
  // The propagation kernels are row-partitioned SpMMs (the bipartite form
  // goes through a cached transpose), so every thread budget must produce
  // the serial predictions exactly.
  const SmallProblem p = MakeSmallProblem();
  const auto seeds = SampleSeedLabels(p.data.tweet_labels, 0.10, 7);
  LabelPropagationOptions serial;
  serial.num_threads = 1;
  const auto expected_items = PropagateBipartite(p.data.xp, seeds, serial);
  const auto user_seeds = SampleSeedLabels(p.data.user_labels, 0.2, 7);
  const auto expected_users = PropagateGraph(p.data.gu, user_seeds, serial);
  for (const int threads : {0, 2, 4}) {
    LabelPropagationOptions options;
    options.num_threads = threads;
    EXPECT_EQ(PropagateBipartite(p.data.xp, seeds, options), expected_items)
        << "threads=" << threads;
    EXPECT_EQ(PropagateGraph(p.data.gu, user_seeds, options), expected_users)
        << "threads=" << threads;
  }
}

// --- UserReg -----------------------------------------------------------------

TEST(UserRegTest, ProducesPredictionsAtBothLevels) {
  const SmallProblem p = MakeSmallProblem();
  const auto seeds = SampleSeedLabels(p.data.tweet_labels, 0.10, 3);
  const UserRegResult r = RunUserReg(p.data, seeds);
  EXPECT_EQ(r.tweet_predictions.size(), p.data.num_tweets());
  EXPECT_EQ(r.user_predictions.size(), p.data.num_users());
  const double tweet_acc =
      ClassificationAccuracy(r.tweet_predictions, p.data.tweet_labels);
  const double user_acc =
      ClassificationAccuracy(r.user_predictions, p.data.user_labels);
  EXPECT_GT(tweet_acc, 0.5);
  EXPECT_GT(user_acc, 0.5);
}

TEST(UserRegTest, SocialSmoothingChangesIsolatedNothing) {
  const SmallProblem p = MakeSmallProblem();
  const auto seeds = SampleSeedLabels(p.data.tweet_labels, 0.10, 3);
  UserRegOptions no_social;
  no_social.social_weight = 0.0;
  UserRegOptions with_social;
  with_social.social_weight = 0.5;
  const UserRegResult a = RunUserReg(p.data, seeds, no_social);
  const UserRegResult b = RunUserReg(p.data, seeds, with_social);
  // Both valid; outputs differ somewhere (the graph matters).
  EXPECT_NE(a.user_predictions, b.user_predictions);
}

TEST(UserRegTest, ThreadedMatchesSerialBitwise) {
  const SmallProblem p = MakeSmallProblem();
  const auto seeds = SampleSeedLabels(p.data.tweet_labels, 0.10, 3);
  UserRegOptions serial;
  serial.num_threads = 1;
  const UserRegResult expected = RunUserReg(p.data, seeds, serial);
  for (const int threads : {0, 2, 4}) {
    UserRegOptions options;
    options.num_threads = threads;
    const UserRegResult got = RunUserReg(p.data, seeds, options);
    EXPECT_EQ(got.tweet_predictions, expected.tweet_predictions)
        << "threads=" << threads;
    EXPECT_EQ(got.user_predictions, expected.user_predictions)
        << "threads=" << threads;
  }
}

// --- ESSA --------------------------------------------------------------------

TEST(EssaTest, ClustersTweetsAboveChance) {
  const SmallProblem p = MakeSmallProblem();
  EssaOptions options;
  options.max_iterations = 40;
  const TriClusterResult r = RunEssa(p.data.xp, p.sf0, options);
  EXPECT_EQ(r.sp.rows(), p.data.num_tweets());
  EXPECT_EQ(r.su.rows(), 0u);  // no user side
  const double acc =
      ClusteringAccuracy(r.TweetClusters(), p.data.tweet_labels);
  EXPECT_GT(acc, 0.5);
}

TEST(EssaTest, LossDecreases) {
  const SmallProblem p = MakeSmallProblem();
  EssaOptions options;
  options.max_iterations = 30;
  const TriClusterResult r = RunEssa(p.data.xp, p.sf0, options);
  ASSERT_GT(r.loss_history.size(), 2u);
  EXPECT_LT(r.loss_history.back().Total(),
            r.loss_history.front().Total());
}

// --- BACG --------------------------------------------------------------------

TEST(BacgTest, AssignsEveryUserAValidCluster) {
  const SmallProblem p = MakeSmallProblem();
  const std::vector<int> clusters = RunBacg(p.data.xu, p.data.gu);
  ASSERT_EQ(clusters.size(), p.data.num_users());
  for (int c : clusters) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 3);
  }
}

TEST(BacgTest, BeatsChanceUsingStructureAndContent) {
  const SmallProblem p = MakeSmallProblem();
  const std::vector<int> clusters = RunBacg(p.data.xu, p.data.gu);
  const double acc = ClusteringAccuracy(clusters, p.data.user_labels);
  EXPECT_GT(acc, 0.45);
}

TEST(BacgTest, DeterministicInSeed) {
  const SmallProblem p = MakeSmallProblem();
  EXPECT_EQ(RunBacg(p.data.xu, p.data.gu), RunBacg(p.data.xu, p.data.gu));
}

// --- aggregation --------------------------------------------------------------

TEST(AggregationTest, MajorityVoteOverUserTweets) {
  const SmallProblem p = MakeSmallProblem();
  // Perfect tweet predictions → aggregated users should score well but the
  // paper's bias argument says not perfectly (noisy off-stance tweets).
  const auto user_pred =
      AggregateTweetsToUsers(p.data, p.data.tweet_labels);
  const double acc =
      ClassificationAccuracy(user_pred, p.data.user_labels);
  EXPECT_GT(acc, 0.7);
}

TEST(AggregationTest, UnpredictedTweetsYieldUnlabeledUsers) {
  const SmallProblem p = MakeSmallProblem();
  const std::vector<Sentiment> none(p.data.num_tweets(), X);
  const auto user_pred = AggregateTweetsToUsers(p.data, none);
  for (const Sentiment s : user_pred) EXPECT_EQ(s, X);
}

TEST(AggregationTest, AggregationBiasExistsOnNoisyTweets) {
  // The motivating claim (paper §1): aggregating noisy tweet-level
  // predictions biases user-level estimates. With ground-truth tweet labels
  // the ceiling is how often a user's majority tweet class equals their
  // stance; off-stance tweets make it < 100%.
  const SmallProblem p = MakeSmallProblem();
  const auto user_pred =
      AggregateTweetsToUsers(p.data, p.data.tweet_labels);
  const double acc = ClassificationAccuracy(user_pred, p.data.user_labels);
  EXPECT_LT(acc, 1.0);
}

}  // namespace
}  // namespace triclust
