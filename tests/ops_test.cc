#include "src/matrix/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::DenseFactorizationLoss;
using testing_util::RandomPositive;
using testing_util::RandomSparse;

TEST(MatMulTest, KnownProduct) {
  const DenseMatrix a({{1, 2}, {3, 4}});
  const DenseMatrix b({{5, 6}, {7, 8}});
  const DenseMatrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50.0);
}

TEST(MatMulTest, IdentityIsNeutral) {
  Rng rng(1);
  const DenseMatrix a = RandomPositive(4, 4, &rng);
  EXPECT_EQ(MatMul(a, DenseMatrix::Identity(4)), a);
  EXPECT_EQ(MatMul(DenseMatrix::Identity(4), a), a);
}

TEST(MatMulVariantsTest, AtBMatchesExplicitTranspose) {
  Rng rng(2);
  const DenseMatrix a = RandomPositive(6, 3, &rng);
  const DenseMatrix b = RandomPositive(6, 4, &rng);
  const DenseMatrix expected = MatMul(a.Transposed(), b);
  const DenseMatrix got = MatMulAtB(a, b);
  ASSERT_EQ(got.rows(), expected.rows());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-12);
  }
}

TEST(MatMulVariantsTest, ABtMatchesExplicitTranspose) {
  Rng rng(3);
  const DenseMatrix a = RandomPositive(5, 3, &rng);
  const DenseMatrix b = RandomPositive(7, 3, &rng);
  const DenseMatrix expected = MatMul(a, b.Transposed());
  const DenseMatrix got = MatMulABt(a, b);
  ASSERT_EQ(got.cols(), 7u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-12);
  }
}

TEST(SpMMTest, MatchesDenseMultiply) {
  Rng rng(4);
  const SparseMatrix x = RandomSparse(8, 6, 0.3, &rng);
  const DenseMatrix d = RandomPositive(6, 3, &rng);
  const DenseMatrix expected = MatMul(x.ToDense(), d);
  const DenseMatrix got = SpMM(x, d);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-12);
  }
}

TEST(SpTMMTest, MatchesDenseTransposeMultiply) {
  Rng rng(5);
  const SparseMatrix x = RandomSparse(8, 6, 0.3, &rng);
  const DenseMatrix d = RandomPositive(8, 3, &rng);
  const DenseMatrix expected = MatMul(x.ToDense().Transposed(), d);
  const DenseMatrix got = SpTMM(x, d);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-12);
  }
}

TEST(SpMMTest, EmptyOperandsProduceZeros) {
  SparseMatrix::Builder builder(0, 5);
  const SparseMatrix empty = builder.Build();
  const DenseMatrix d(5, 2, 1.0);
  const DenseMatrix up = SpTMM(empty, DenseMatrix(0, 2, 0.0));
  EXPECT_EQ(up.rows(), 5u);
  EXPECT_DOUBLE_EQ(up.Sum(), 0.0);
  const DenseMatrix down = SpMM(empty, d);
  EXPECT_EQ(down.rows(), 0u);
}

TEST(NormTest, FrobeniusForms) {
  const DenseMatrix a({{3, 4}});
  EXPECT_DOUBLE_EQ(FrobeniusNormSquared(a), 25.0);
  const DenseMatrix b({{0, 0}});
  EXPECT_DOUBLE_EQ(FrobeniusDistanceSquared(a, b), 25.0);
  EXPECT_DOUBLE_EQ(TraceAtB(a, a), 25.0);
}

/// Property: the O(nnz·k) factorization loss equals the dense evaluation.
class FactorizationLossTest : public ::testing::TestWithParam<int> {};

TEST_P(FactorizationLossTest, MatchesDenseReference) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t m = 2 + rng.NextUint64Below(20);
  const size_t n = 2 + rng.NextUint64Below(20);
  const size_t k = 2 + rng.NextUint64Below(3);
  const SparseMatrix x = RandomSparse(m, n, 0.3, &rng);
  const DenseMatrix u = RandomPositive(m, k, &rng);
  const DenseMatrix v = RandomPositive(n, k, &rng);
  const double fast = FactorizationLossSquared(x, u, v);
  const double slow = DenseFactorizationLoss(x, u, v);
  EXPECT_NEAR(fast, slow, 1e-9 * (1.0 + slow));
}

TEST_P(FactorizationLossTest, TriFactorizationMatchesComposition) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  const size_t m = 2 + rng.NextUint64Below(15);
  const size_t n = 2 + rng.NextUint64Below(15);
  const size_t k = 3;
  const SparseMatrix x = RandomSparse(m, n, 0.3, &rng);
  const DenseMatrix s = RandomPositive(m, k, &rng);
  const DenseMatrix h = RandomPositive(k, k, &rng);
  const DenseMatrix f = RandomPositive(n, k, &rng);
  EXPECT_NEAR(TriFactorizationLossSquared(x, s, h, f),
              FactorizationLossSquared(x, MatMul(s, h), f), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, FactorizationLossTest,
                         ::testing::Range(0, 10));

TEST(GraphQuadraticFormTest, MatchesPairwiseDefinition) {
  // Graph: 0-1 (w=2), 1-2 (w=1).
  SparseMatrix::Builder builder(3, 3);
  builder.Add(0, 1, 2.0);
  builder.Add(1, 0, 2.0);
  builder.Add(1, 2, 1.0);
  builder.Add(2, 1, 1.0);
  const SparseMatrix g = builder.Build();
  const std::vector<double> degrees = {2.0, 3.0, 1.0};
  const DenseMatrix s({{1, 0}, {0, 1}, {1, 1}});
  // ½ Σ_ij w_ij ||s_i − s_j||²:
  //  (0,1): 2·(1+1)=4 ; (1,2): 1·(1+0)=1 → total 5.
  EXPECT_DOUBLE_EQ(GraphLaplacianQuadraticForm(g, degrees, s), 5.0);
}

TEST(GraphQuadraticFormTest, ZeroForConstantRows) {
  Rng rng(6);
  const SparseMatrix g = [&] {
    SparseMatrix::Builder builder(4, 4);
    builder.Add(0, 1, 1.0);
    builder.Add(1, 0, 1.0);
    builder.Add(2, 3, 2.0);
    builder.Add(3, 2, 2.0);
    return builder.Build();
  }();
  std::vector<double> degrees(4);
  for (size_t i = 0; i < 4; ++i) degrees[i] = g.RowSum(i);
  DenseMatrix s(4, 3, 0.7);  // identical rows → penalty 0
  EXPECT_NEAR(GraphLaplacianQuadraticForm(g, degrees, s), 0.0, 1e-12);
}

TEST(MultiplicativeUpdateTest, ScalesByRatioSqrt) {
  DenseMatrix m({{2.0, 4.0}});
  const DenseMatrix numer({{8.0, 1.0}});
  const DenseMatrix denom({{2.0, 4.0}});
  MultiplicativeUpdateInPlace(&m, numer, denom, 0.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 4.0);   // 2·sqrt(4)
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);   // 4·sqrt(1/4)
}

TEST(MultiplicativeUpdateTest, ZeroOverZeroIsStationary) {
  DenseMatrix m({{3.0}});
  const DenseMatrix zero({{0.0}});
  MultiplicativeUpdateInPlace(&m, zero, zero, 1e-12);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 3.0);
}

TEST(MultiplicativeUpdateTest, NegativeNoiseClamped) {
  DenseMatrix m({{1.0}});
  const DenseMatrix numer({{-1e-18}});
  const DenseMatrix denom({{1.0}});
  MultiplicativeUpdateInPlace(&m, numer, denom, 1e-12);
  EXPECT_GE(m.At(0, 0), 0.0);
  EXPECT_TRUE(std::isfinite(m.At(0, 0)));
}

TEST(SplitPositiveNegativeTest, ReconstructsAndNonNegative) {
  const DenseMatrix m({{1.5, -2.0}, {0.0, 3.0}});
  DenseMatrix pos;
  DenseMatrix neg;
  SplitPositiveNegative(m, &pos, &neg);
  EXPECT_TRUE(IsNonNegative(pos));
  EXPECT_TRUE(IsNonNegative(neg));
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      EXPECT_DOUBLE_EQ(pos.At(i, j) - neg.At(i, j), m.At(i, j));
      EXPECT_DOUBLE_EQ(pos.At(i, j) + neg.At(i, j), std::fabs(m.At(i, j)));
    }
  }
}

TEST(DiagScaleRowsTest, ScalesEachRow) {
  const DenseMatrix d({{1, 2}, {3, 4}});
  const DenseMatrix out = DiagScaleRows({2.0, 0.5}, d);
  EXPECT_DOUBLE_EQ(out.At(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(out.At(1, 0), 1.5);
}

TEST(PredicateTest, NonNegativeAndFinite) {
  EXPECT_TRUE(IsNonNegative(DenseMatrix({{0, 1}})));
  EXPECT_FALSE(IsNonNegative(DenseMatrix({{0, -1e-300}})));
  DenseMatrix inf({{1.0}});
  inf.At(0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(AllFinite(inf));
  EXPECT_TRUE(AllFinite(DenseMatrix({{1e300, -1e300}})));
}

}  // namespace
}  // namespace triclust
