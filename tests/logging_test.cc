#include "src/util/logging.h"

#include <gtest/gtest.h>

namespace triclust {
namespace {

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  TRICLUST_CHECK(1 + 1 == 2);  // must not abort
  TRICLUST_CHECK_EQ(4, 4);
  TRICLUST_CHECK_NE(4, 5);
  TRICLUST_CHECK_LT(1, 2);
  TRICLUST_CHECK_LE(2, 2);
  TRICLUST_CHECK_GT(3, 2);
  TRICLUST_CHECK_GE(3, 3);
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsWithDiagnostics) {
  EXPECT_DEATH(TRICLUST_CHECK(false), "check failed");
  EXPECT_DEATH(TRICLUST_CHECK_EQ(1, 2), "check failed");
  EXPECT_DEATH(TRICLUST_CHECK_GT(1, 2), "1.*>.*2");
}

TEST(LoggingTest, LogLevelFiltersMessages) {
  // Capture stderr around a filtered and an unfiltered message.
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  TRICLUST_LOG(kInfo) << "should be filtered";
  std::string filtered = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(filtered.find("should be filtered"), std::string::npos);

  ::testing::internal::CaptureStderr();
  TRICLUST_LOG(kError) << "must appear";
  std::string shown = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(shown.find("must appear"), std::string::npos);
  EXPECT_NE(shown.find("ERROR"), std::string::npos);
  SetLogLevel(LogLevel::kInfo);
}

TEST(LoggingTest, MessageCarriesFileAndSeverity) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  TRICLUST_LOG(kWarning) << "watch out";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("WARN"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(out.find("watch out"), std::string::npos);
  SetLogLevel(LogLevel::kInfo);
}

}  // namespace
}  // namespace triclust
