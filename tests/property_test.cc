/// Cross-module property tests: parameterized sweeps asserting invariants
/// that must hold on *any* input, complementing the per-module example
/// tests. Each suite runs over a range of random seeds.

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/scenario.h"
#include "src/data/snapshots.h"
#include "src/data/stats.h"
#include "src/eval/metrics.h"
#include "src/text/tokenizer.h"
#include "src/text/vectorizer.h"
#include "src/util/string_util.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

// --- generator invariants -----------------------------------------------------

TEST_P(SeededProperty, GeneratedCorpusIsStructurallySound) {
  SyntheticConfig config;
  config.seed = GetParam();
  config.num_users = 40 + GetParam() * 13 % 100;
  config.num_days = 4 + static_cast<int>(GetParam() % 7);
  config.base_tweets_per_day = 40.0;
  config.burst_days = {static_cast<int>(GetParam() % config.num_days)};
  const SyntheticDataset d = GenerateSynthetic(config);

  const CorpusStats stats = ComputeCorpusStats(d.corpus);
  EXPECT_EQ(stats.num_tweets, d.corpus.num_tweets());
  size_t volume_total = 0;
  for (size_t v : stats.daily_volume) volume_total += v;
  EXPECT_EQ(volume_total, stats.num_tweets);
  size_t activity_total = 0;
  for (size_t a : stats.user_activity) activity_total += a;
  EXPECT_EQ(activity_total, stats.num_tweets);
  EXPECT_GE(stats.activity_gini, 0.0);
  EXPECT_LE(stats.activity_gini, 1.0);
  // Long-tail activity: clearly unequal.
  EXPECT_GT(stats.activity_gini, 0.3);
  EXPECT_GT(stats.num_retweets, 0u);

  // Retweets always reference earlier tweets by other authors.
  for (const Tweet& t : d.corpus.tweets()) {
    if (!t.IsRetweet()) continue;
    const Tweet& orig = d.corpus.tweet(static_cast<size_t>(t.retweet_of));
    EXPECT_LT(orig.id, t.id);
    EXPECT_NE(orig.user, t.user);
  }
}

TEST_P(SeededProperty, CorpusTsvRoundTripIsLossless) {
  SyntheticConfig config;
  config.seed = GetParam() + 77;
  config.num_users = 30;
  config.num_days = 3;
  config.base_tweets_per_day = 30.0;
  const SyntheticDataset d = GenerateSynthetic(config);
  const std::string path = ::testing::TempDir() + "/prop_roundtrip_" +
                           std::to_string(GetParam()) + ".tsv";
  ASSERT_TRUE(d.corpus.SaveTsv(path).ok());
  auto loaded = Corpus::LoadTsv(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());
  ASSERT_EQ(loaded.value().num_tweets(), d.corpus.num_tweets());
  for (size_t i = 0; i < d.corpus.num_tweets(); ++i) {
    EXPECT_EQ(loaded.value().tweet(i).text, d.corpus.tweet(i).text);
    EXPECT_EQ(loaded.value().tweet(i).label, d.corpus.tweet(i).label);
  }
}

// --- tokenizer invariants --------------------------------------------------------

TEST_P(SeededProperty, TokenizerOutputIsCanonical) {
  SyntheticConfig config;
  config.seed = GetParam() + 200;
  config.num_users = 25;
  config.num_days = 2;
  config.base_tweets_per_day = 40.0;
  const SyntheticDataset d = GenerateSynthetic(config);
  const Tokenizer tokenizer;
  for (const Tweet& t : d.corpus.tweets()) {
    const auto tokens = tokenizer.Tokenize(t.text);
    // Deterministic.
    EXPECT_EQ(tokens, tokenizer.Tokenize(t.text));
    for (const std::string& token : tokens) {
      EXPECT_FALSE(token.empty());
      // Lowercase canonical form: re-lowercasing is a no-op.
      EXPECT_EQ(token, ToLowerAscii(token));
      // No whitespace inside tokens.
      EXPECT_EQ(token.find(' '), std::string::npos);
    }
  }
}

// --- vectorizer invariants -------------------------------------------------------

TEST_P(SeededProperty, TransformRowsBoundedByDistinctTokens) {
  SyntheticConfig config;
  config.seed = GetParam() + 300;
  config.num_users = 25;
  config.num_days = 2;
  config.base_tweets_per_day = 30.0;
  const SyntheticDataset d = GenerateSynthetic(config);
  const Tokenizer tokenizer;
  std::vector<std::vector<std::string>> docs;
  for (const Tweet& t : d.corpus.tweets()) {
    docs.push_back(tokenizer.Tokenize(t.text));
  }
  DocumentVectorizer vectorizer;
  const SparseMatrix x = vectorizer.FitTransform(docs);
  ASSERT_EQ(x.rows(), docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    std::unordered_set<std::string> distinct(docs[i].begin(),
                                             docs[i].end());
    EXPECT_LE(x.RowNnz(i), distinct.size());
  }
  // Every stored value is strictly positive (tf-idf of present tokens).
  for (double v : x.values()) EXPECT_GT(v, 0.0);
}

// --- metric invariants -------------------------------------------------------------

TEST_P(SeededProperty, MetricsInvariantUnderItemPermutation) {
  Rng rng(GetParam() + 400);
  std::vector<int> clusters(60);
  std::vector<Sentiment> truth(60);
  for (size_t i = 0; i < clusters.size(); ++i) {
    clusters[i] = static_cast<int>(rng.NextUint64Below(3));
    truth[i] = SentimentFromIndex(static_cast<int>(rng.NextUint64Below(3)));
  }
  const auto perm = rng.Permutation(clusters.size());
  std::vector<int> shuffled_clusters(clusters.size());
  std::vector<Sentiment> shuffled_truth(truth.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    shuffled_clusters[i] = clusters[perm[i]];
    shuffled_truth[i] = truth[perm[i]];
  }
  EXPECT_DOUBLE_EQ(ClusteringAccuracy(clusters, truth),
                   ClusteringAccuracy(shuffled_clusters, shuffled_truth));
  EXPECT_NEAR(NormalizedMutualInformation(clusters, truth),
              NormalizedMutualInformation(shuffled_clusters, shuffled_truth),
              1e-12);
  EXPECT_NEAR(AdjustedRandIndex(clusters, truth),
              AdjustedRandIndex(shuffled_clusters, shuffled_truth), 1e-12);
  EXPECT_DOUBLE_EQ(
      PermutationAccuracy(clusters, truth),
      PermutationAccuracy(shuffled_clusters, shuffled_truth));
}

TEST_P(SeededProperty, AccuracyAtLeastLargestClassShare) {
  // Majority-vote accuracy can never fall below the share of the largest
  // ground-truth class (mapping everything there achieves it).
  Rng rng(GetParam() + 500);
  std::vector<int> clusters(50);
  std::vector<Sentiment> truth(50);
  size_t counts[kNumSentimentClasses] = {0, 0, 0};
  for (size_t i = 0; i < clusters.size(); ++i) {
    clusters[i] = static_cast<int>(rng.NextUint64Below(2));
    const int g = static_cast<int>(rng.NextUint64Below(3));
    truth[i] = SentimentFromIndex(g);
    ++counts[g];
  }
  const double largest_share =
      static_cast<double>(
          *std::max_element(counts, counts + kNumSentimentClasses)) /
      static_cast<double>(clusters.size());
  EXPECT_GE(ClusteringAccuracy(clusters, truth) + 1e-12, largest_share);
}

// --- matrix-builder invariants --------------------------------------------------

TEST_P(SeededProperty, SnapshotsPartitionTheCorpusMatrices) {
  SyntheticConfig config;
  config.seed = GetParam() + 600;
  config.num_users = 30;
  config.num_days = 4;
  config.base_tweets_per_day = 30.0;
  const SyntheticDataset d = GenerateSynthetic(config);
  MatrixBuilder builder;
  builder.Fit(d.corpus);
  const DatasetMatrices all = builder.BuildAll(d.corpus);

  size_t tweet_total = 0;
  size_t xp_nnz_total = 0;
  for (const Snapshot& snap : SplitByDay(d.corpus)) {
    const DatasetMatrices day = builder.Build(d.corpus, snap.tweet_ids);
    tweet_total += day.num_tweets();
    xp_nnz_total += day.xp.nnz();
    EXPECT_EQ(day.xp.cols(), all.xp.cols());
  }
  EXPECT_EQ(tweet_total, all.num_tweets());
  // Xp rows are per-tweet, so the nnz partitions exactly.
  EXPECT_EQ(xp_nnz_total, all.xp.nnz());
}

TEST_P(SeededProperty, ScenarioKnobsKeepCorpusDenseAndStreamable) {
  // The adversarial scenario knobs (spam fleet, topic hijack, dead days,
  // extreme bursts — src/data/scenario.h composes these) must not break
  // the corpus contracts everything downstream relies on: dense in-order
  // ids, valid user references, and non-decreasing tweet days in id order
  // (the canonical-TSV property the streaming reader requires), even on
  // burst days an order of magnitude over baseline.
  SyntheticConfig config;
  config.seed = GetParam() + 900;
  config.num_users = 60;
  config.num_days = 6 + static_cast<int>(GetParam() % 5);
  config.base_tweets_per_day = 50.0;
  config.burst_days = {1, 2 + static_cast<int>(GetParam() % 4)};
  config.burst_multiplier = 8.0;
  config.dead_days = {0, config.num_days - 1,
                      static_cast<int>(GetParam() % 3)};
  config.hijack_day = config.num_days / 2;
  config.num_spam_users = 20 + GetParam() % 30;
  config.spam_tweets_per_user_per_day = 1.5;
  const SyntheticDataset d = GenerateSynthetic(config);
  ASSERT_GT(d.corpus.num_tweets(), 0u);
  // The spam fleet extends the user table; ids must stay dense.
  EXPECT_EQ(d.corpus.num_users(),
            config.num_users + config.num_spam_users);

  const std::unordered_set<int> dead(config.dead_days.begin(),
                                     config.dead_days.end());
  int prev_day = 0;
  for (size_t id = 0; id < d.corpus.num_tweets(); ++id) {
    const Tweet& t = d.corpus.tweet(id);
    EXPECT_EQ(t.id, id);
    EXPECT_LT(t.user, d.corpus.num_users());
    // No backward day references: id order is day order, which is what
    // lets WriteTsv output feed the streaming reader.
    EXPECT_GE(t.day, prev_day) << "tweet " << id;
    EXPECT_GE(t.day, 0);
    EXPECT_LT(t.day, config.num_days);
    EXPECT_EQ(dead.count(t.day), 0u)
        << "tweet " << id << " posted on dead day " << t.day;
    if (t.IsRetweet()) {
      EXPECT_LT(static_cast<size_t>(t.retweet_of), id);
    }
    prev_day = t.day;
  }
  // The hijack swaps word roles, not labels: the label vocabulary stays
  // the standard sentiment set and the lexicon maps only polar classes.
  for (const auto& [word, sentiment] : d.true_lexicon.Entries()) {
    EXPECT_FALSE(word.empty());
    EXPECT_TRUE(sentiment == Sentiment::kPositive ||
                sentiment == Sentiment::kNegative)
        << word;
  }
}

TEST_P(SeededProperty, ChurnScheduleRoundTripsThroughTsv) {
  // Churn schedules must survive serialization exactly: same days, same
  // actions, same campaign ids, launch names byte-for-byte (including
  // tabs/newlines, which the TSV escaping protects).
  Rng rng(GetParam() + 1300);
  std::vector<ChurnEvent> schedule;
  int day = 0;
  const size_t events = 1 + rng.UniformInt(1, 6);
  for (size_t e = 0; e < events; ++e) {
    day += static_cast<int>(rng.UniformInt(0, 3));
    ChurnEvent event;
    event.day = day;
    if (rng.Bernoulli(0.5)) {
      event.action = ChurnEvent::Action::kRetire;
      event.campaign = static_cast<size_t>(rng.UniformInt(0, 7));
    } else {
      event.action = ChurnEvent::Action::kLaunch;
      event.name = "launch\t#" + std::to_string(e) + "\nline2\\end";
    }
    schedule.push_back(std::move(event));
  }

  std::ostringstream os;
  ASSERT_TRUE(WriteChurnScheduleTsv(schedule, &os).ok());
  std::istringstream is(os.str());
  const Result<std::vector<ChurnEvent>> reread =
      ReadChurnScheduleTsv(&is, "roundtrip");
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  EXPECT_EQ(reread.value(), schedule);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range<uint64_t>(1, 9));

// --- corpus stats ------------------------------------------------------------------

TEST(GiniTest, KnownValues) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({5.0}), 0.0);
  EXPECT_NEAR(GiniCoefficient({1.0, 1.0, 1.0, 1.0}), 0.0, 1e-12);
  // All mass on one of n: G = (n−1)/n.
  EXPECT_NEAR(GiniCoefficient({0.0, 0.0, 0.0, 10.0}), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(GiniCoefficient({0.0, 0.0}), 0.0);
}

TEST(CorpusStatsTest, CountsMiniCorpus) {
  Corpus c;
  const size_t a = c.AddUser("a");
  const size_t b = c.AddUser("b");
  c.AddUser("silent");
  c.AddTweet(a, 0, "x");
  c.AddTweet(a, 1, "y");
  c.AddTweet(b, 1, "z", Sentiment::kUnlabeled, 0);
  const CorpusStats stats = ComputeCorpusStats(c);
  EXPECT_EQ(stats.num_tweets, 3u);
  EXPECT_EQ(stats.num_retweets, 1u);
  EXPECT_EQ(stats.daily_volume, (std::vector<size_t>{1, 2}));
  EXPECT_EQ(stats.user_activity, (std::vector<size_t>{2, 1, 0}));
  // a posts on two days; b on one → 1 of 2 active users returns.
  EXPECT_DOUBLE_EQ(stats.returning_user_fraction, 0.5);
}

}  // namespace
}  // namespace triclust
