#include <gtest/gtest.h>

#include "src/text/lexicon.h"
#include "src/text/stopwords.h"
#include "src/text/tokenizer.h"
#include "src/text/vectorizer.h"
#include "src/text/vocabulary.h"

namespace triclust {
namespace {

// --- stopwords --------------------------------------------------------------

TEST(StopWordsTest, CommonWordsPresent) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("and"));
  EXPECT_TRUE(IsStopWord("of"));
  EXPECT_TRUE(IsStopWord("yourself"));
}

TEST(StopWordsTest, ContentWordsAbsent) {
  EXPECT_FALSE(IsStopWord("monsanto"));
  EXPECT_FALSE(IsStopWord("evil"));
  EXPECT_FALSE(IsStopWord(""));
  EXPECT_FALSE(IsStopWord("#prop37"));
}

TEST(StopWordsTest, ListNonTrivial) { EXPECT_GT(StopWordCount(), 100u); }

// --- vocabulary -------------------------------------------------------------

TEST(VocabularyTest, AssignsSequentialIds) {
  Vocabulary v;
  EXPECT_EQ(v.GetOrAdd("alpha"), 0u);
  EXPECT_EQ(v.GetOrAdd("beta"), 1u);
  EXPECT_EQ(v.GetOrAdd("alpha"), 0u);
  EXPECT_EQ(v.size(), 2u);
}

TEST(VocabularyTest, LookupAndReverse) {
  Vocabulary v;
  v.GetOrAdd("x");
  EXPECT_EQ(v.IdOf("x"), 0);
  EXPECT_EQ(v.IdOf("missing"), -1);
  EXPECT_TRUE(v.Contains("x"));
  EXPECT_FALSE(v.Contains("missing"));
  EXPECT_EQ(v.TokenOf(0), "x");
  EXPECT_EQ(v.tokens(), std::vector<std::string>{"x"});
}

TEST(VocabularyTest, EmptyState) {
  Vocabulary v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

// --- vectorizer -------------------------------------------------------------

std::vector<std::vector<std::string>> Docs() {
  return {{"gmo", "label", "gmo"},
          {"label", "safe"},
          {"gmo", "corn", "the"}};
}

TEST(VectorizerTest, TermFrequencyCounts) {
  VectorizerOptions options;
  options.weighting = TermWeighting::kTermFrequency;
  options.l2_normalize = false;  // raw counts
  DocumentVectorizer vec(options);
  const SparseMatrix x = vec.FitTransform(Docs());
  EXPECT_EQ(x.rows(), 3u);
  // "the" is a stop word: vocabulary = gmo, label, safe, corn.
  EXPECT_EQ(x.cols(), 4u);
  const ptrdiff_t gmo = vec.vocabulary().IdOf("gmo");
  ASSERT_GE(gmo, 0);
  EXPECT_DOUBLE_EQ(x.At(0, static_cast<size_t>(gmo)), 2.0);
  EXPECT_DOUBLE_EQ(x.At(1, static_cast<size_t>(gmo)), 0.0);
}

TEST(VectorizerTest, StopwordRemovalToggle) {
  VectorizerOptions options;
  options.remove_stopwords = false;
  DocumentVectorizer vec(options);
  vec.Fit(Docs());
  EXPECT_TRUE(vec.vocabulary().Contains("the"));
}

TEST(VectorizerTest, MinDocumentFrequencyDropsRareTerms) {
  VectorizerOptions options;
  options.min_document_frequency = 2;
  DocumentVectorizer vec(options);
  vec.Fit(Docs());
  EXPECT_TRUE(vec.vocabulary().Contains("gmo"));    // df = 2
  EXPECT_TRUE(vec.vocabulary().Contains("label"));  // df = 2
  EXPECT_FALSE(vec.vocabulary().Contains("safe"));  // df = 1
  EXPECT_FALSE(vec.vocabulary().Contains("corn"));  // df = 1
}

TEST(VectorizerTest, TfIdfWeightsRareTermsHigher) {
  VectorizerOptions options;
  options.weighting = TermWeighting::kTfIdf;
  DocumentVectorizer vec(options);
  const SparseMatrix x = vec.FitTransform(Docs());
  const auto id = [&](const char* t) {
    return static_cast<size_t>(vec.vocabulary().IdOf(t));
  };
  // "safe" (df=1) must outweigh "label" (df=2) within document 1 where both
  // have tf = 1.
  EXPECT_GT(x.At(1, id("safe")), x.At(1, id("label")));
}

TEST(VectorizerTest, OutOfVocabularyTokensSkipped) {
  DocumentVectorizer vec;
  vec.Fit(Docs());
  const SparseMatrix x = vec.Transform({{"gmo", "unseen"}});
  EXPECT_EQ(x.rows(), 1u);
  EXPECT_EQ(x.RowNnz(0), 1u);
}

TEST(VectorizerTest, L2NormalizeMakesUnitRows) {
  VectorizerOptions options;
  options.l2_normalize = true;
  DocumentVectorizer vec(options);
  const SparseMatrix x = vec.FitTransform(Docs());
  for (size_t i = 0; i < x.rows(); ++i) {
    double sq = 0.0;
    for (size_t p = x.row_ptr()[i]; p < x.row_ptr()[i + 1]; ++p) {
      sq += x.values()[p] * x.values()[p];
    }
    EXPECT_NEAR(sq, 1.0, 1e-12);
  }
}

TEST(VectorizerTest, DocumentFrequencyAccessor) {
  DocumentVectorizer vec;
  vec.Fit(Docs());
  const ptrdiff_t gmo = vec.vocabulary().IdOf("gmo");
  EXPECT_EQ(vec.DocumentFrequency(static_cast<size_t>(gmo)), 2u);
  EXPECT_EQ(vec.num_fit_documents(), 3u);
}

TEST(VectorizerTest, EmptyDocumentGivesEmptyRow) {
  DocumentVectorizer vec;
  vec.Fit(Docs());
  const SparseMatrix x = vec.Transform({{}, {"gmo"}});
  EXPECT_EQ(x.RowNnz(0), 0u);
  EXPECT_EQ(x.RowNnz(1), 1u);
}

// --- lexicon ----------------------------------------------------------------

TEST(LexiconTest, AddAndLookup) {
  SentimentLexicon lex;
  lex.Add("good", Sentiment::kPositive);
  lex.Add("bad", Sentiment::kNegative);
  EXPECT_EQ(lex.PolarityOf("good"), Sentiment::kPositive);
  EXPECT_EQ(lex.PolarityOf("bad"), Sentiment::kNegative);
  EXPECT_EQ(lex.PolarityOf("corn"), Sentiment::kUnlabeled);
  EXPECT_TRUE(lex.Contains("good"));
  EXPECT_FALSE(lex.Contains("corn"));
  EXPECT_EQ(lex.size(), 2u);
}

TEST(LexiconTest, LastWriteWins) {
  SentimentLexicon lex;
  lex.Add("word", Sentiment::kPositive);
  lex.Add("word", Sentiment::kNegative);
  EXPECT_EQ(lex.PolarityOf("word"), Sentiment::kNegative);
  EXPECT_EQ(lex.size(), 1u);
}

TEST(LexiconTest, BuildSf0RowsAreDistributions) {
  SentimentLexicon lex;
  lex.Add("good", Sentiment::kPositive);
  Vocabulary vocab;
  vocab.GetOrAdd("good");
  vocab.GetOrAdd("corn");
  const DenseMatrix sf0 = lex.BuildSf0(vocab, 3, 0.9);
  ASSERT_EQ(sf0.rows(), 2u);
  ASSERT_EQ(sf0.cols(), 3u);
  for (size_t f = 0; f < 2; ++f) {
    double row_sum = 0.0;
    for (size_t c = 0; c < 3; ++c) row_sum += sf0.At(f, c);
    EXPECT_NEAR(row_sum, 1.0, 1e-12);
  }
  // Covered word: confident row.
  EXPECT_DOUBLE_EQ(sf0.At(0, 0), 0.9);
  EXPECT_DOUBLE_EQ(sf0.At(0, 1), 0.05);
  // Uncovered word: uniform row.
  EXPECT_NEAR(sf0.At(1, 0), 1.0 / 3.0, 1e-12);
}

TEST(LexiconTest, BuildSf0CoversEmoticonTokens) {
  SentimentLexicon lex;  // empty lexicon
  Vocabulary vocab;
  vocab.GetOrAdd(std::string(kPositiveEmoticonToken));
  vocab.GetOrAdd(std::string(kNegativeEmoticonToken));
  const DenseMatrix sf0 = lex.BuildSf0(vocab, 3, 0.8);
  EXPECT_DOUBLE_EQ(sf0.At(0, 0), 0.8);
  EXPECT_DOUBLE_EQ(sf0.At(1, 1), 0.8);
}

TEST(LexiconTest, BuildSf0TwoClassesSkipsNeutralWords) {
  SentimentLexicon lex;
  lex.Add("meh", Sentiment::kNeutral);
  lex.Add("good", Sentiment::kPositive);
  Vocabulary vocab;
  vocab.GetOrAdd("meh");
  vocab.GetOrAdd("good");
  const DenseMatrix sf0 = lex.BuildSf0(vocab, 2, 0.9);
  // Neutral word keeps a uniform row under k=2.
  EXPECT_DOUBLE_EQ(sf0.At(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(sf0.At(1, 0), 0.9);
}

TEST(LexiconTest, BuiltinEnglishSane) {
  const SentimentLexicon lex = SentimentLexicon::BuiltinEnglish();
  EXPECT_GT(lex.size(), 40u);
  EXPECT_EQ(lex.PolarityOf("love"), Sentiment::kPositive);
  EXPECT_EQ(lex.PolarityOf("evil"), Sentiment::kNegative);
}

TEST(LexiconTest, EntriesRoundTrip) {
  SentimentLexicon lex;
  lex.Add("a", Sentiment::kPositive);
  lex.Add("b", Sentiment::kNegative);
  const auto entries = lex.Entries();
  EXPECT_EQ(entries.size(), 2u);
}

}  // namespace
}  // namespace triclust
