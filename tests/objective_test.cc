#include "src/core/objective.h"

#include <gtest/gtest.h>

#include "src/matrix/ops.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::RandomPositive;
using testing_util::RandomSparse;

struct Problem {
  SparseMatrix xp, xu, xr;
  UserGraph gu;
  DenseMatrix sp, su, sf, hp, hu, sf0;
};

Problem MakeSetup(uint64_t seed) {
  Rng rng(seed);
  const size_t n = 10;
  const size_t m = 6;
  const size_t l = 14;
  const size_t k = 3;
  Problem s;
  s.xp = RandomSparse(n, l, 0.3, &rng);
  s.xu = RandomSparse(m, l, 0.3, &rng);
  s.xr = RandomSparse(m, n, 0.3, &rng);
  s.gu = UserGraph::FromEdges(m, {{0, 1, 1.0}, {2, 3, 2.0}});
  s.sp = RandomPositive(n, k, &rng);
  s.su = RandomPositive(m, k, &rng);
  s.sf = RandomPositive(l, k, &rng);
  s.hp = RandomPositive(k, k, &rng);
  s.hu = RandomPositive(k, k, &rng);
  s.sf0 = RandomPositive(l, k, &rng);
  return s;
}

TEST(ObjectiveTest, ComponentsMatchDirectEvaluation) {
  const Problem s = MakeSetup(1);
  const LossComponents loss =
      ComputeObjective(s.xp, s.xu, s.xr, s.gu, s.sp, s.su, s.sf, s.hp, s.hu,
                       0.3, s.sf0, 0.7);
  EXPECT_NEAR(loss.xp_loss,
              testing_util::DenseFactorizationLoss(s.xp, MatMul(s.sp, s.hp),
                                                   s.sf),
              1e-8);
  EXPECT_NEAR(loss.xu_loss,
              testing_util::DenseFactorizationLoss(s.xu, MatMul(s.su, s.hu),
                                                   s.sf),
              1e-8);
  EXPECT_NEAR(loss.xr_loss,
              testing_util::DenseFactorizationLoss(s.xr, s.su, s.sp), 1e-8);
  EXPECT_NEAR(loss.lexicon_loss,
              0.3 * FrobeniusDistanceSquared(s.sf, s.sf0), 1e-10);
  EXPECT_NEAR(loss.graph_loss,
              0.7 * GraphLaplacianQuadraticForm(s.gu.adjacency(),
                                                s.gu.degrees(), s.su),
              1e-10);
  EXPECT_DOUBLE_EQ(loss.temporal_user_loss, 0.0);
  EXPECT_NEAR(loss.Total(),
              loss.xp_loss + loss.xu_loss + loss.xr_loss +
                  loss.lexicon_loss + loss.graph_loss,
              1e-8);
}

TEST(ObjectiveTest, TemporalTermWeighsOnlySelectedRows) {
  const Problem s = MakeSetup(2);
  DenseMatrix suw(s.su.rows(), s.su.cols(), 0.0);
  std::vector<double> weights(s.su.rows(), 0.0);
  weights[1] = 2.0;  // only user 1 is evolving
  const LossComponents loss =
      ComputeObjective(s.xp, s.xu, s.xr, s.gu, s.sp, s.su, s.sf, s.hp, s.hu,
                       0.0, s.sf0, 0.0, &weights, &suw);
  double expected = 0.0;
  for (size_t c = 0; c < s.su.cols(); ++c) {
    expected += 2.0 * s.su(1, c) * s.su(1, c);  // target row is zero
  }
  EXPECT_NEAR(loss.temporal_user_loss, expected, 1e-10);
}

TEST(ObjectiveTest, ZeroWeightsKillRegularizers) {
  const Problem s = MakeSetup(3);
  const LossComponents loss =
      ComputeObjective(s.xp, s.xu, s.xr, s.gu, s.sp, s.su, s.sf, s.hp, s.hu,
                       0.0, s.sf0, 0.0);
  EXPECT_DOUBLE_EQ(loss.lexicon_loss, 0.0);
  EXPECT_DOUBLE_EQ(loss.graph_loss, 0.0);
}

TEST(ObjectiveTest, PerfectFactorizationHasNearZeroDataLoss) {
  // Build X = S·Hᵀ... choose factors, densify the product, round-trip.
  Rng rng(4);
  const size_t m = 5;
  const size_t n = 7;
  const size_t k = 2;
  const DenseMatrix u = RandomPositive(m, k, &rng);
  const DenseMatrix v = RandomPositive(n, k, &rng);
  const SparseMatrix x = SparseMatrix::FromDense(MatMulABt(u, v));
  EXPECT_NEAR(FactorizationLossSquared(x, u, v), 0.0, 1e-9);
}

TEST(LossComponentsTest, TotalSumsEverything) {
  LossComponents loss;
  loss.xp_loss = 1;
  loss.xu_loss = 2;
  loss.xr_loss = 3;
  loss.lexicon_loss = 4;
  loss.graph_loss = 5;
  loss.temporal_user_loss = 6;
  EXPECT_DOUBLE_EQ(loss.Total(), 21.0);
}

}  // namespace
}  // namespace triclust
