/// Command-line front end: run (offline or online) tri-clustering over a
/// corpus TSV and write per-tweet and per-user sentiment assignments.
///
/// Usage:
///   triclust_cli [--online] [--k N] [--alpha A] [--beta B] [--iters I]
///                [--seed-fraction F] [--demo] [--input corpus.tsv]
///                [--output prefix]
///
/// With --demo (default when no --input is given) a synthetic campaign is
/// generated, solved, and scored against its ground truth. With --input,
/// the TSV produced by Corpus::SaveTsv is loaded; assignments are written
/// to <prefix>_tweets.tsv and <prefix>_users.tsv.

#include <fstream>
#include <iostream>
#include <string>
#include <unordered_map>

#include "src/core/offline.h"
#include "src/core/online.h"
#include "src/data/matrix_builder.h"
#include "src/data/snapshots.h"
#include "src/data/synthetic.h"
#include "src/eval/metrics.h"
#include "src/eval/protocol.h"
#include "src/util/string_util.h"

namespace triclust {
namespace {

struct CliOptions {
  bool online = false;
  bool demo = false;
  int k = 3;
  double alpha = 0.05;
  double beta = 0.8;
  int iters = 100;
  double seed_fraction = 0.0;  // > 0 enables guided mode
  std::string input;
  std::string output = "triclust_out";
};

int Fail(const std::string& why) {
  std::cerr << "error: " << why << "\n"
            << "usage: triclust_cli [--online] [--k N] [--alpha A] "
               "[--beta B] [--iters I] [--seed-fraction F] [--demo] "
               "[--input corpus.tsv] [--output prefix]\n";
  return 1;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--online") {
      options->online = true;
    } else if (arg == "--demo") {
      options->demo = true;
    } else if (arg == "--k") {
      const char* v = next();
      size_t k = 0;
      if (v == nullptr || !ParseSizeT(v, &k) || k < 2 || k > 3) return false;
      options->k = static_cast<int>(k);
    } else if (arg == "--alpha") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &options->alpha)) return false;
    } else if (arg == "--beta") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &options->beta)) return false;
    } else if (arg == "--iters") {
      const char* v = next();
      size_t iters = 0;
      if (v == nullptr || !ParseSizeT(v, &iters) || iters == 0) return false;
      options->iters = static_cast<int>(iters);
    } else if (arg == "--seed-fraction") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &options->seed_fraction)) {
        return false;
      }
    } else if (arg == "--input") {
      const char* v = next();
      if (v == nullptr) return false;
      options->input = v;
    } else if (arg == "--output") {
      const char* v = next();
      if (v == nullptr) return false;
      options->output = v;
    } else {
      return false;
    }
  }
  if (options->input.empty()) options->demo = true;
  return true;
}

int RunCli(const CliOptions& options) {
  // --- load or generate -------------------------------------------------------
  Corpus corpus;
  SentimentLexicon lexicon;
  if (options.demo) {
    std::cerr << "demo mode: generating a synthetic campaign\n";
    SyntheticDataset dataset = GenerateSynthetic(Prop30LikeConfig());
    lexicon = CorruptLexicon(dataset.true_lexicon, 0.6, 0.05, 99);
    corpus = std::move(dataset.corpus);
  } else {
    auto loaded = Corpus::LoadTsv(options.input);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    corpus = std::move(loaded).value();
    lexicon = SentimentLexicon::BuiltinEnglish();
  }
  std::cerr << "corpus: " << corpus.num_tweets() << " tweets, "
            << corpus.num_users() << " users, " << corpus.num_days()
            << " days\n";

  MatrixBuilder builder;
  builder.Fit(corpus);
  TriClusterConfig config;
  config.num_clusters = options.k;
  config.alpha = options.alpha;
  config.beta = options.beta;
  config.max_iterations = options.iters;
  config.track_loss = false;
  const DenseMatrix sf0 = lexicon.BuildSf0(builder.vocabulary(), options.k);

  // --- solve -------------------------------------------------------------------
  const DatasetMatrices data = builder.BuildAll(corpus);
  std::vector<int> tweet_clusters;
  std::vector<int> user_clusters;
  if (options.online) {
    OnlineConfig online_config;
    online_config.base = config;
    OnlineTriClusterer online(online_config, sf0);
    tweet_clusters.assign(corpus.num_tweets(), -1);
    std::unordered_map<size_t, int> last_user_cluster;
    for (const Snapshot& snap : SplitByDay(corpus)) {
      const DatasetMatrices day =
          builder.Build(corpus, snap.tweet_ids, snap.last_day);
      const TriClusterResult r = online.ProcessSnapshot(day);
      if (day.num_tweets() == 0) continue;
      const auto tc = r.TweetClusters();
      for (size_t i = 0; i < day.num_tweets(); ++i) {
        tweet_clusters[day.tweet_ids[i]] = tc[i];
      }
      const auto uc = r.UserClusters();
      for (size_t j = 0; j < day.num_users(); ++j) {
        last_user_cluster[day.user_ids[j]] = uc[j];
      }
    }
    user_clusters.assign(corpus.num_users(), -1);
    for (const auto& [user, cluster] : last_user_cluster) {
      user_clusters[user] = cluster;
    }
  } else {
    Supervision supervision;
    const Supervision* supervision_ptr = nullptr;
    if (options.seed_fraction > 0.0) {
      std::vector<Sentiment> truth(corpus.num_tweets());
      for (size_t i = 0; i < corpus.num_tweets(); ++i) {
        truth[i] = corpus.tweet(i).label;
      }
      supervision.tweet_seeds = SampleSeedLabels(truth,
                                                 options.seed_fraction, 1);
      supervision.weight = 1.0;
      supervision_ptr = &supervision;
      std::cerr << "guided mode: seeding "
                << static_cast<int>(options.seed_fraction * 100)
                << "% of tweet labels\n";
    }
    const TriClusterResult r =
        OfflineTriClusterer(config).Run(data, sf0, supervision_ptr);
    tweet_clusters = r.TweetClusters();
    // Scatter user rows back to corpus user ids (users with no tweets have
    // no row and stay unassigned).
    user_clusters.assign(corpus.num_users(), -1);
    const auto rows = r.UserClusters();
    for (size_t j = 0; j < data.user_ids.size(); ++j) {
      user_clusters[data.user_ids[j]] = rows[j];
    }
  }

  // --- score (when ground truth exists) and write -------------------------------
  std::vector<Sentiment> tweet_truth(corpus.num_tweets());
  for (size_t i = 0; i < corpus.num_tweets(); ++i) {
    tweet_truth[i] = corpus.tweet(i).label;
  }
  std::vector<Sentiment> user_truth(corpus.num_users());
  for (size_t u = 0; u < corpus.num_users(); ++u) {
    user_truth[u] = corpus.user(u).label;
  }
  const auto labeled = corpus.CountTweetLabels();
  if (labeled.positive + labeled.negative + labeled.neutral > 0) {
    std::cout << "tweet-level: accuracy "
              << 100.0 * ClusteringAccuracy(tweet_clusters, tweet_truth)
              << "%  NMI "
              << 100.0 *
                     NormalizedMutualInformation(tweet_clusters, tweet_truth)
              << "%  ARI "
              << AdjustedRandIndex(tweet_clusters, tweet_truth) << "\n";
    std::cout << "user-level:  accuracy "
              << 100.0 * ClusteringAccuracy(user_clusters, user_truth)
              << "%  NMI "
              << 100.0 *
                     NormalizedMutualInformation(user_clusters, user_truth)
              << "%\n";
  }

  const auto mapping =
      MajorityVoteMapping(tweet_clusters, tweet_truth, options.k);
  {
    std::ofstream out(options.output + "_tweets.tsv");
    out << "#tweet_id\tcluster\tsentiment\n";
    for (size_t i = 0; i < tweet_clusters.size(); ++i) {
      const Sentiment s = tweet_clusters[i] >= 0
                              ? mapping[static_cast<size_t>(
                                    tweet_clusters[i])]
                              : Sentiment::kUnlabeled;
      out << i << "\t" << tweet_clusters[i] << "\t" << SentimentName(s)
          << "\n";
    }
  }
  {
    std::ofstream out(options.output + "_users.tsv");
    out << "#user_id\thandle\tcluster\n";
    for (size_t u = 0; u < user_clusters.size(); ++u) {
      out << u << "\t" << corpus.user(u).handle << "\t" << user_clusters[u]
          << "\n";
    }
  }
  std::cerr << "wrote " << options.output << "_tweets.tsv and "
            << options.output << "_users.tsv\n";
  return 0;
}

}  // namespace
}  // namespace triclust

int main(int argc, char** argv) {
  triclust::CliOptions options;
  if (!triclust::ParseArgs(argc, argv, &options)) {
    return triclust::Fail("bad arguments");
  }
  return triclust::RunCli(options);
}
