/// Multi-campaign serving demo: several Prop30/Prop37-style campaigns
/// tracked concurrently by one CampaignEngine (src/serving/). Each day the
/// server ingests every campaign's new tweets (incremental, O(new tweets)),
/// advances all campaigns in one sharded Advance() call, and prints a
/// combined dashboard. Mid-stream it checkpoints the whole fleet through a
/// CampaignStore, and at the end it proves the restart path: a fresh engine
/// restored from the store replays the remaining days bit-identically.
/// A final act demonstrates graceful degradation: one campaign's stream is
/// poisoned with NaNs, the engine degrades and quarantines only that
/// campaign (the rest keep serving), and a checkpoint restore plus
/// ReviveCampaign() brings it back — with HealthReport() dashboards at
/// every step.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/campaign_server

#include <algorithm>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "src/data/matrix_builder.h"
#include "src/data/snapshots.h"
#include "src/data/synthetic.h"
#include "src/eval/metrics.h"
#include "src/serving/campaign_engine.h"
#include "src/serving/campaign_store.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

struct CampaignSetup {
  std::string name;
  SyntheticDataset dataset;
  std::vector<Snapshot> days;
  MatrixBuilder builder;  // Fit; cloned into the engine per campaign
  DenseMatrix sf0;
};

CampaignSetup MakeCampaign(const std::string& name, SyntheticConfig config) {
  CampaignSetup c;
  c.name = name;
  config.num_days = 12;
  config.base_tweets_per_day *= 0.6;  // demo-sized volumes
  c.dataset = GenerateSynthetic(config);
  c.days = SplitByDay(c.dataset.corpus);
  c.builder.Fit(c.dataset.corpus);
  const SentimentLexicon lexicon =
      CorruptLexicon(c.dataset.true_lexicon, 0.6, 0.05, 99);
  c.sf0 = lexicon.BuildSf0(c.builder.vocabulary(), 3);
  return c;
}

OnlineConfig ServingConfig() {
  OnlineConfig config;
  config.base.max_iterations = 40;
  config.base.track_loss = false;
  return config;
}

size_t Register(serving::CampaignEngine* engine, const CampaignSetup& c) {
  // Registration input is trusted here (names are literals above), so an
  // InvalidArgument/AlreadyExists from AddCampaign would be a demo bug —
  // value() aborts with the status in that case.
  return engine
      ->AddCampaign(c.name, ServingConfig(), c.sf0, c.builder,
                    &c.dataset.corpus)
      .value();
}

/// Prints engine.HealthReport() the way a /health endpoint would render it.
void PrintHealthDashboard(const serving::CampaignEngine& engine,
                          const std::string& title) {
  const serving::EngineHealthReport report = engine.HealthReport();
  TableWriter table(title + "  [" + std::to_string(report.healthy) +
                    " healthy, " + std::to_string(report.degraded) +
                    " degraded, " + std::to_string(report.quarantined) +
                    " quarantined]");
  table.SetHeader({"campaign", "health", "fails", "timestep", "pending",
                   "last error"});
  for (const serving::CampaignHealthStatus& c : report.campaigns) {
    table.AddRow({c.name, serving::CampaignHealthName(c.health),
                  std::to_string(c.consecutive_failures),
                  std::to_string(c.timestep), std::to_string(c.pending),
                  c.last_error.ok() ? "-" : c.last_error.ToString()});
  }
  table.Print(std::cout);
}

void Run() {
  // Three concurrent campaigns with different volume/stance profiles.
  std::vector<CampaignSetup> campaigns;
  campaigns.push_back(MakeCampaign("prop30", Prop30LikeConfig()));
  campaigns.push_back(MakeCampaign("prop37", Prop37LikeConfig()));
  {
    SyntheticConfig burst = Prop30LikeConfig(/*seed=*/77);
    burst.burst_days = {4, 8};
    burst.burst_multiplier = 5.0;
    campaigns.push_back(MakeCampaign("prop30-burst", burst));
  }

  serving::CampaignEngine engine;  // hardware-concurrency sharding
  for (const CampaignSetup& c : campaigns) Register(&engine, c);

  const std::string store_dir = "/tmp/triclust_campaign_store";
  const serving::CampaignStore store(store_dir);
  const int checkpoint_day = 5;
  int max_days = 0;
  for (const CampaignSetup& c : campaigns) {
    max_days = std::max(max_days, static_cast<int>(c.days.size()));
  }

  TableWriter table("Multi-campaign serving dashboard (one row per "
                    "campaign-day; all campaigns advanced by one sharded "
                    "call)");
  table.SetHeader({"day", "campaign", "tweets", "pos%", "neg%", "neu%",
                   "acc%", "fit ms", "note"});

  // Remember the mid-stream results so the restart replay can be verified.
  std::vector<std::vector<TriClusterResult>> tail_results(campaigns.size());

  for (int day = 0; day < max_days; ++day) {
    for (size_t i = 0; i < campaigns.size(); ++i) {
      if (day < static_cast<int>(campaigns[i].days.size())) {
        engine.Ingest(i, campaigns[i].days[day].tweet_ids, day);
      }
    }
    serving::AdvanceOptions advance;
    advance.include_idle = true;  // keep timesteps aligned with days
    const auto reports = engine.Advance(advance);

    for (const auto& report : reports) {
      if (!report.fitted || report.data.num_tweets() == 0) continue;
      const auto tweet_clusters = report.result.TweetClusters();
      const auto mapping =
          MajorityVoteMapping(tweet_clusters, report.data.tweet_labels, 3);
      double share[kNumSentimentClasses] = {0, 0, 0};
      for (int c : tweet_clusters) {
        ++share[SentimentIndex(mapping[static_cast<size_t>(c)])];
      }
      for (double& s : share) s = 100.0 * s / report.data.num_tweets();
      const double acc = 100.0 * ClusteringAccuracy(
                                     tweet_clusters, report.data.tweet_labels);
      std::string note;
      if (day == checkpoint_day) note = "checkpointed";
      table.AddRow({std::to_string(day), engine.name(report.campaign),
                    std::to_string(report.data.num_tweets()),
                    TableWriter::Num(share[0], 1),
                    TableWriter::Num(share[1], 1),
                    TableWriter::Num(share[2], 1), TableWriter::Num(acc, 1),
                    TableWriter::Num(report.solve_ms, 1), note});
      if (day > checkpoint_day) {
        tail_results[report.campaign].push_back(report.result);
      }
    }

    if (day == checkpoint_day) {
      const Status saved = store.Save(engine);
      if (!saved.ok()) {
        std::cerr << "store save failed: " << saved.ToString() << "\n";
        return;
      }
    }
  }
  table.Print(std::cout);

  // --- restart path: fresh engine, restore, replay the tail ---------------
  serving::CampaignEngine restarted;
  for (const CampaignSetup& c : campaigns) Register(&restarted, c);
  const Status restored = store.Restore(&restarted);
  if (!restored.ok()) {
    std::cerr << "store restore failed: " << restored.ToString() << "\n";
    return;
  }

  bool identical = true;
  // tail_results holds only fitted non-empty snapshots, in order; walk it
  // with a per-campaign cursor rather than deriving an index from the day
  // (a quiet day produces no entry on either side).
  std::vector<size_t> replay_cursor(campaigns.size(), 0);
  for (int day = checkpoint_day + 1; day < max_days; ++day) {
    for (size_t i = 0; i < campaigns.size(); ++i) {
      if (day < static_cast<int>(campaigns[i].days.size())) {
        restarted.Ingest(i, campaigns[i].days[day].tweet_ids, day);
      }
    }
    serving::AdvanceOptions advance;
    advance.include_idle = true;
    for (const auto& report : restarted.Advance(advance)) {
      if (!report.fitted || report.data.num_tweets() == 0) continue;
      auto& expected = tail_results[report.campaign];
      const size_t cursor = replay_cursor[report.campaign]++;
      if (cursor >= expected.size() ||
          !(report.result.su == expected[cursor].su &&
            report.result.sp == expected[cursor].sp &&
            report.result.sf == expected[cursor].sf)) {
        identical = false;
      }
    }
  }
  for (size_t i = 0; i < campaigns.size(); ++i) {
    if (replay_cursor[i] != tail_results[i].size()) identical = false;
  }
  std::cout << "\ncheckpointed fleet at day " << checkpoint_day << " into "
            << store_dir << "; restored a fresh engine and replayed days "
            << checkpoint_day + 1 << ".." << max_days - 1 << ": "
            << (identical ? "bit-identical to the uninterrupted run"
                          : "MISMATCH (bug!)")
            << "\n";

  // --- graceful degradation: quarantine one campaign, revive it -----------
  // Poison prop37's stream state with NaNs (standing in for any way a
  // stream can go bad in production) and keep the fleet running. Each
  // Advance() rejects the victim's non-finite fit and rolls its state
  // back — degraded, then quarantined after the engine's failure
  // threshold — while the other campaigns keep fitting normally. Recovery
  // is the ordinary ops play: restore the last good checkpoint and revive.
  std::cout << "\n";
  const ptrdiff_t victim_id = restarted.FindCampaign("prop37");
  const size_t victim = static_cast<size_t>(victim_id);
  StreamState poisoned = restarted.state(victim);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (DenseMatrix& sf : poisoned.sf_history) sf.Fill(nan);
  for (auto& [user, rows] : poisoned.user_history) {
    for (std::vector<double>& row : rows) {
      std::fill(row.begin(), row.end(), nan);
    }
  }
  restarted.set_state(victim, std::move(poisoned));
  std::cout << "poisoned '" << restarted.name(victim)
            << "' stream state with NaNs; advancing the fleet...\n";

  const std::vector<size_t>& replay_tweets =
      campaigns[victim].days.back().tweet_ids;
  const int replay_day = static_cast<int>(campaigns[victim].days.size()) - 1;
  for (int round = 0;
       restarted.health(victim) != serving::CampaignHealth::kQuarantined;
       ++round) {
    if (round >= 10) {  // quarantine threshold is 3; 10 means a bug
      std::cerr << "campaign never quarantined (bug!)\n";
      return;
    }
    restarted.Ingest(victim, replay_tweets, replay_day);
    serving::AdvanceOptions advance;
    advance.include_idle = true;  // the healthy campaigns keep advancing
    restarted.Advance(advance);
    const serving::CampaignHealthStatus row =
        restarted.HealthReport().campaigns[victim];
    std::cout << "  after advance: " << row.name << " is "
              << serving::CampaignHealthName(row.health) << " ("
              << row.consecutive_failures << " consecutive failures)\n";
  }
  PrintHealthDashboard(restarted, "Fleet health with one poisoned campaign "
                                  "(the rest keep serving)");

  // Recovery: restore the whole fleet from the day-5 checkpoint (the
  // victim's clean pre-poison state) and re-admit it to scheduling.
  const Status recovered = store.Restore(&restarted);
  if (!recovered.ok()) {
    std::cerr << "recovery restore failed: " << recovered.ToString() << "\n";
    return;
  }
  restarted.ReviveCampaign(victim);
  restarted.Ingest(victim, replay_tweets, replay_day);
  serving::AdvanceOptions advance;
  advance.include_idle = true;
  restarted.Advance(advance);
  PrintHealthDashboard(restarted,
                       "Fleet health after checkpoint restore + revival");
  std::cout << (restarted.HealthReport().AllHealthy()
                    ? "quarantined campaign revived from the checkpoint; "
                      "fleet fully healthy again\n"
                    : "fleet still unhealthy after revival (bug!)\n");
}

}  // namespace
}  // namespace triclust

int main() {
  triclust::Run();
  return 0;
}
