/// Election study: the full offline workflow on a balanced, contested topic
/// (Prop-30-like). Runs tri-clustering against a supervised and an
/// unsupervised baseline, prints both levels of accuracy, the tweet-level
/// confusion matrix, and the most sentiment-laden vocabulary the
/// factorization discovered — including polar words the prior lexicon did
/// NOT contain (the co-clustering bonus).
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/election_study

#include <algorithm>
#include <iostream>

#include "src/baselines/essa.h"
#include "src/baselines/naive_bayes.h"
#include "src/core/offline.h"
#include "src/data/matrix_builder.h"
#include "src/data/synthetic.h"
#include "src/eval/metrics.h"
#include "src/eval/protocol.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

void Run() {
  // --- data -----------------------------------------------------------------
  const SyntheticDataset dataset = GenerateSynthetic(Prop30LikeConfig());
  const Corpus& corpus = dataset.corpus;
  MatrixBuilder builder;
  builder.Fit(corpus);
  const DatasetMatrices data = builder.BuildAll(corpus);
  const SentimentLexicon lexicon =
      CorruptLexicon(dataset.true_lexicon, 0.6, 0.05, 99);
  std::cout << "campaign: " << corpus.num_tweets() << " tweets from "
            << corpus.num_users() << " users over " << corpus.num_days()
            << " days; vocabulary " << data.num_features()
            << " features; prior lexicon " << lexicon.size() << " words\n";

  // --- methods ---------------------------------------------------------------
  TriClusterConfig config;
  const DenseMatrix sf0 =
      lexicon.BuildSf0(builder.vocabulary(), config.num_clusters);
  const TriClusterResult tri = OfflineTriClusterer(config).Run(data, sf0);

  const double nb_acc = CrossValidatedAccuracy(
      data.tweet_labels, 5, 1, [&](const std::vector<Sentiment>& masked) {
        MultinomialNaiveBayes nb;
        nb.Train(data.xp, masked);
        return nb.Predict(data.xp);
      });
  const TriClusterResult essa = RunEssa(data.xp, sf0);

  TableWriter table("Method comparison (accuracy %, tweet / user)");
  table.SetHeader({"method", "tweet acc", "user acc"});
  table.AddRow({"Naive Bayes (supervised, 5-fold CV)",
                TableWriter::Num(100.0 * nb_acc), "-"});
  table.AddRow(
      {"ESSA (unsupervised, text only)",
       TableWriter::Num(100.0 * ClusteringAccuracy(essa.TweetClusters(),
                                                   data.tweet_labels)),
       "-"});
  table.AddRow(
      {"Tri-clustering (unsupervised)",
       TableWriter::Num(100.0 * ClusteringAccuracy(tri.TweetClusters(),
                                                   data.tweet_labels)),
       TableWriter::Num(100.0 * ClusteringAccuracy(tri.UserClusters(),
                                                   data.user_labels))});
  table.Print(std::cout);

  // --- confusion matrix --------------------------------------------------------
  const auto mapping = MajorityVoteMapping(tri.TweetClusters(),
                                           data.tweet_labels,
                                           config.num_clusters);
  const auto predicted = ApplyMapping(tri.TweetClusters(), mapping);
  const ConfusionMatrix cm =
      BuildConfusion(predicted, data.tweet_labels, kNumSentimentClasses);
  TableWriter confusion("Tweet-level confusion (rows = truth)");
  confusion.SetHeader({"truth\\pred", "pos", "neg", "neu"});
  const char* names[] = {"pos", "neg", "neu"};
  for (int g = 0; g < kNumSentimentClasses; ++g) {
    confusion.AddRow({names[g], std::to_string(cm.counts[g][0]),
                      std::to_string(cm.counts[g][1]),
                      std::to_string(cm.counts[g][2])});
  }
  confusion.Print(std::cout);
  std::cout << "macro-F1: " << TableWriter::Num(100.0 * cm.MacroF1())
            << "%\n";

  // --- discovered vocabulary ---------------------------------------------------
  // Features whose Sf row is most confidently polar, that the *prior*
  // lexicon did not know: sentiment discovered purely by co-clustering.
  struct Discovered {
    std::string word;
    double confidence;
    int cls;
  };
  std::vector<Discovered> discovered;
  for (size_t fidx = 0; fidx < tri.sf.rows(); ++fidx) {
    const std::string& word = builder.vocabulary().TokenOf(fidx);
    if (lexicon.Contains(word)) continue;
    double row_sum = 0.0;
    for (size_t c = 0; c < tri.sf.cols(); ++c) row_sum += tri.sf(fidx, c);
    if (row_sum <= 0.0) continue;
    const size_t best = tri.sf.ArgMaxRow(fidx);
    if (static_cast<int>(best) >= 2) continue;  // only pos/neg interesting
    discovered.push_back({word, tri.sf(fidx, best) / row_sum,
                          static_cast<int>(best)});
  }
  std::sort(discovered.begin(), discovered.end(),
            [](const Discovered& a, const Discovered& b) {
              return a.confidence > b.confidence;
            });
  TableWriter vocab("Top newly-discovered polar words (not in the prior)");
  vocab.SetHeader({"word", "cluster", "confidence", "generator truth"});
  size_t shown = 0;
  size_t correct = 0;
  for (const Discovered& d : discovered) {
    if (shown >= 12) break;
    const Sentiment truth = dataset.true_lexicon.PolarityOf(d.word);
    const Sentiment cluster_class =
        mapping[static_cast<size_t>(d.cls)];
    if (truth != Sentiment::kUnlabeled && truth == cluster_class) ++correct;
    vocab.AddRow({d.word, std::string(SentimentName(cluster_class)),
                  TableWriter::Num(d.confidence),
                  std::string(SentimentName(truth))});
    ++shown;
  }
  vocab.Print(std::cout);
  std::cout << "of the shown discoveries with known truth, " << correct
            << " are correctly signed\n";
}

}  // namespace
}  // namespace triclust

int main() {
  triclust::Run();
  return 0;
}
