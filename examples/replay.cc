/// Replay driver CLI: load a corpus TSV (docs/FORMATS.md), partition it
/// into topic streams, and stream it through the multi-campaign
/// CampaignEngine in day order at a configurable speed-up — the path by
/// which arbitrary external datasets reach the serving layer.
///
/// Usage:
///   replay [--input corpus.tsv] [--campaigns N] [--iters I] [--threads N]
///          [--day-interval-ms MS] [--speedup X] [--deadline-ms MS]
///          [--max-days D] [--store DIR] [--write-demo path.tsv]
///          [--eval-csv path.csv] [--require-metrics] [--no-verify]
///          [--stream]
///          [--scenario NAME] [--scenario-scale X] [--methods a,b,c]
///          [--methods-csv path.csv] [--check-expectations]
///
/// Without --input a demo corpus is generated, written to a TSV, and read
/// back, so the run always exercises the on-disk loaders end-to-end;
/// --write-demo keeps that TSV (or, with --input, re-exports the loaded
/// corpus in the canonical format).
///
/// --stream replays through the bounded-memory streaming reader
/// (ReadTsvStream / TsvStreamReader, src/data/corpus_io.h): two
/// streaming fit passes plus one replay pass, holding only one day-chunk
/// of tweet text at a time — then replays the whole-file path over the
/// same TSV and verifies the factors and accuracy timelines are
/// bit-identical. Exits non-zero on any mismatch. Pacing/deadline/store
/// knobs are ignored in this mode.
///
/// --scenario runs a named adversarial scenario (src/data/scenario.h;
/// names via --scenario=list) through the multi-method comparison runner
/// (src/eval/method_runner.h): the tri-cluster serving path vs the
/// baseline methods on the same hostile stream. --methods-csv writes the
/// plot-ready comparison timeline; --check-expectations exits non-zero
/// when the scenario's machine-readable expectation record is missed
/// (the CI smoke gate).
///
/// Every run scores the replay with the timeline evaluation harness
/// (src/eval/timeline_eval.h): per-day tweet-level and user-level
/// accuracy timelines are printed, --eval-csv writes them as CSV for
/// plotting, and --require-metrics exits non-zero when the run scored no
/// labeled items or produced non-finite aggregate metrics (the CI smoke
/// test's guard against silently-empty evaluation).
///
/// Unless --no-verify (or a deadline reshapes the snapshots), the replayed
/// per-campaign factors are checked bitwise against a direct
/// MatrixBuilder::Build + SnapshotSolver::Solve loop over the same days,
/// and the replayed accuracy timeline is checked bit-for-bit against
/// scoring that direct solve with the same harness.

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/snapshot_solver.h"
#include "src/data/corpus_io.h"
#include "src/data/matrix_builder.h"
#include "src/data/scenario.h"
#include "src/data/synthetic.h"
#include "src/eval/method_runner.h"
#include "src/eval/timeline_eval.h"
#include "src/serving/campaign_store.h"
#include "src/serving/replay.h"
#include "src/text/lexicon.h"
#include "src/util/string_util.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

struct CliOptions {
  std::string input;
  size_t campaigns = 2;
  int iters = 30;
  int threads = 0;  // engine sharding budget; 0 = hardware concurrency
  double day_interval_ms = 0.0;
  double speedup = 1.0;
  double deadline_ms = 0.0;
  int max_days = 0;
  std::string store_dir;
  std::string write_demo;
  std::string eval_csv;
  bool require_metrics = false;
  bool verify = true;
  bool stream = false;
  std::string scenario;
  double scenario_scale = 1.0;
  std::string methods;
  std::string methods_csv;
  bool check_expectations = false;
};

int Fail(const std::string& why) {
  std::cerr << "error: " << why << "\n"
            << "usage: replay [--input corpus.tsv] [--campaigns N] "
               "[--iters I] [--threads N] [--day-interval-ms MS] "
               "[--speedup X] [--deadline-ms MS] [--max-days D] "
               "[--store DIR] [--write-demo path.tsv] "
               "[--eval-csv path.csv] [--require-metrics] [--no-verify] "
               "[--stream] [--scenario NAME] [--scenario-scale X] "
               "[--methods a,b,c] [--methods-csv path.csv] "
               "[--check-expectations]\n";
  return 1;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    auto parse_size = [&](size_t* out) {
      const char* v = next();
      return v != nullptr && ParseSizeT(v, out);
    };
    auto parse_double = [&](double* out) {
      const char* v = next();
      return v != nullptr && ParseDouble(v, out);
    };
    if (arg == "--input") {
      const char* v = next();
      if (v == nullptr) return false;
      options->input = v;
    } else if (arg == "--campaigns") {
      if (!parse_size(&options->campaigns) || options->campaigns == 0) {
        return false;
      }
    } else if (arg == "--iters") {
      size_t iters = 0;
      if (!parse_size(&iters) || iters == 0) return false;
      options->iters = static_cast<int>(iters);
    } else if (arg == "--threads") {
      size_t threads = 0;
      if (!parse_size(&threads)) return false;
      options->threads = static_cast<int>(threads);
    } else if (arg == "--day-interval-ms") {
      if (!parse_double(&options->day_interval_ms) ||
          options->day_interval_ms < 0) {
        return false;
      }
    } else if (arg == "--speedup") {
      if (!parse_double(&options->speedup) || options->speedup <= 0) {
        return false;
      }
    } else if (arg == "--deadline-ms") {
      if (!parse_double(&options->deadline_ms)) return false;
    } else if (arg == "--max-days") {
      size_t days = 0;
      if (!parse_size(&days)) return false;
      options->max_days = static_cast<int>(days);
    } else if (arg == "--store") {
      const char* v = next();
      if (v == nullptr) return false;
      options->store_dir = v;
    } else if (arg == "--write-demo") {
      const char* v = next();
      if (v == nullptr) return false;
      options->write_demo = v;
    } else if (arg == "--eval-csv") {
      const char* v = next();
      if (v == nullptr) return false;
      options->eval_csv = v;
    } else if (arg == "--require-metrics") {
      options->require_metrics = true;
    } else if (arg == "--no-verify") {
      options->verify = false;
    } else if (arg == "--stream") {
      options->stream = true;
    } else if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return false;
      options->scenario = v;
    } else if (arg == "--scenario-scale") {
      if (!parse_double(&options->scenario_scale) ||
          options->scenario_scale <= 0) {
        return false;
      }
    } else if (arg == "--methods") {
      const char* v = next();
      if (v == nullptr) return false;
      options->methods = v;
    } else if (arg == "--methods-csv") {
      const char* v = next();
      if (v == nullptr) return false;
      options->methods_csv = v;
    } else if (arg == "--check-expectations") {
      options->check_expectations = true;
    } else {
      return false;
    }
  }
  return true;
}

// Bitwise double comparison where NaN (nothing scored) matches NaN.
bool SameMetric(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

bool SameScore(const SnapshotScore& got, const SnapshotScore& expected) {
  return got.day == expected.day &&
         got.tweets_scored == expected.tweets_scored &&
         got.users_scored == expected.users_scored &&
         SameMetric(got.tweet_accuracy, expected.tweet_accuracy) &&
         SameMetric(got.tweet_permutation_accuracy,
                    expected.tweet_permutation_accuracy) &&
         SameMetric(got.tweet_nmi, expected.tweet_nmi) &&
         SameMetric(got.user_accuracy, expected.user_accuracy) &&
         SameMetric(got.user_permutation_accuracy,
                    expected.user_permutation_accuracy) &&
         SameMetric(got.user_nmi, expected.user_nmi);
}

// Generates the demo corpus (same shape as the default replay demo) and
// writes it to `path`; fills `lexicon` with the corrupted prior.
Status WriteDemoCorpus(const std::string& path, SentimentLexicon* lexicon) {
  SyntheticConfig config = Prop30LikeConfig();
  config.num_days = 8;
  config.base_tweets_per_day = 120.0;
  config.num_users = 300;
  SyntheticDataset dataset = GenerateSynthetic(config);
  *lexicon = CorruptLexicon(dataset.true_lexicon, 0.6, 0.05, 99);
  return WriteTsv(dataset.corpus, path);
}

// --scenario mode: run a named adversarial scenario through the
// multi-method comparison runner and report per-method timelines.
int RunScenarioMode(const CliOptions& options) {
  if (options.scenario == "list") {
    for (const std::string& name : ScenarioNames()) {
      Result<Scenario> s = GetScenario(name);
      std::cout << name << " — " << s.value().description << "\n";
    }
    return 0;
  }
  auto scenario_or = GetScenario(options.scenario, options.scenario_scale);
  if (!scenario_or.ok()) return Fail(scenario_or.status().ToString());
  const Scenario scenario = std::move(scenario_or).value();
  std::cerr << "scenario " << scenario.name << " (scale "
            << TableWriter::Num(options.scenario_scale, 2)
            << "): " << scenario.description << "\n";

  MethodRunnerOptions runner_options;
  if (!options.methods.empty()) {
    runner_options.methods = Split(options.methods, ',');
  }
  runner_options.max_iterations = options.iters;
  runner_options.num_threads = options.threads;
  auto run_or = RunScenario(scenario, runner_options);
  if (!run_or.ok()) return Fail(run_or.status().ToString());
  const ScenarioRun run = std::move(run_or).value();

  // Per-day comparison: one accuracy-pair column per method.
  TableWriter day_table(
      "Method comparison timeline ('-' = nothing scored that day)");
  std::vector<std::string> header = {"day"};
  size_t num_day_rows = 0;
  for (const MethodTimeline& m : run.methods) {
    header.push_back(m.method + " t-acc");
    header.push_back(m.method + " u-acc");
    num_day_rows = std::max(num_day_rows, m.days.size());
  }
  day_table.SetHeader(header);
  for (size_t d = 0; d < num_day_rows; ++d) {
    std::vector<std::string> row;
    for (const MethodTimeline& m : run.methods) {
      if (row.empty()) {
        row.push_back(d < m.days.size() ? std::to_string(m.days[d].day)
                                        : std::to_string(d));
      }
      if (d < m.days.size()) {
        row.push_back(TableWriter::Num(m.days[d].tweet_accuracy, 3));
        row.push_back(TableWriter::Num(m.days[d].user_accuracy, 3));
      } else {
        row.push_back("-");
        row.push_back("-");
      }
    }
    if (row.empty()) row.push_back(std::to_string(d));
    day_table.AddRow(row);
  }
  day_table.Print(std::cout);

  TableWriter aggregate_table("Run aggregates (micro-averaged)");
  aggregate_table.SetHeader(
      {"method", "tweets scored", "tweet acc", "users scored", "user acc"});
  for (const MethodTimeline& m : run.methods) {
    aggregate_table.AddRow({m.method, std::to_string(m.tweets_scored),
                            TableWriter::Num(m.tweet_accuracy, 3),
                            std::to_string(m.users_scored),
                            TableWriter::Num(m.user_accuracy, 3)});
  }
  aggregate_table.Print(std::cout);

  std::cout << "fleet health after " << run.replay_horizon_days
            << " replay days: " << run.final_health.healthy << " healthy, "
            << run.final_health.degraded << " degraded, "
            << run.final_health.quarantined << " quarantined, "
            << run.final_health.retired << " retired\n";

  if (!options.methods_csv.empty()) {
    const Status written =
        WriteMethodComparisonCsvFile(run, options.methods_csv);
    if (!written.ok()) {
      return Fail("methods csv write failed: " + written.ToString());
    }
    std::cout << "wrote method-comparison CSV to " << options.methods_csv
              << "\n";
  }

  if (options.check_expectations) {
    const ExpectationReport report = CheckExpectations(scenario, run);
    if (!report.ok()) {
      for (const std::string& failure : report.failures) {
        std::cerr << "expectation MISSED: " << failure << "\n";
      }
      return 1;
    }
    std::cout << "all scenario expectations met\n";
  }
  return 0;
}

// --stream mode: replay through the bounded-memory streaming reader, then
// verify bit-identity against the whole-file path over the same TSV.
int RunStreamingReplay(const CliOptions& options) {
  // Resolve the TSV path: --input, or generate + write the demo corpus.
  // The file must outlive BOTH replay passes, so the demo temp file is
  // removed only at the end.
  struct TempFileGuard {
    std::string path;
    ~TempFileGuard() {
      if (!path.empty()) std::remove(path.c_str());
    }
  } temp;
  std::string path = options.input;
  SentimentLexicon lexicon;
  if (path.empty()) {
    std::cerr << "demo mode: generating a synthetic campaign corpus\n";
    path = options.write_demo.empty()
               ? "/tmp/triclust_replay_stream." + std::to_string(getpid()) +
                     ".tsv"
               : options.write_demo;
    const Status written = WriteDemoCorpus(path, &lexicon);
    if (!written.ok()) return Fail(written.ToString());
    std::cerr << "wrote demo corpus to " << path << "\n";
    if (options.write_demo.empty()) temp.path = path;
  } else {
    lexicon = SentimentLexicon::BuiltinEnglish();
  }

  // --- two streaming passes fit the feature space ---------------------------
  // (document-frequency count, then vocabulary admission — the same
  // feature space MatrixBuilder::Fit learns, without the corpus in RAM).
  MatrixBuilder builder;
  builder.FitStreamBegin();
  int stream_days = 0;
  {
    auto counted = ReadTsvStream(
        path, [&](int /*day*/, const Corpus& c,
                  const std::vector<size_t>& ids) {
          for (size_t id : ids) builder.FitStreamCount(c.tweets()[id].text);
          return Status::OK();
        });
    if (!counted.ok()) return Fail(counted.status().ToString());
    stream_days = counted.value().num_days();
  }
  if (stream_days == 0) return Fail("corpus has no tweets");
  builder.FitStreamAdmitBegin();
  {
    auto admitted = ReadTsvStream(
        path, [&](int /*day*/, const Corpus& c,
                  const std::vector<size_t>& ids) {
          for (size_t id : ids) builder.FitStreamAdmit(c.tweets()[id].text);
          return Status::OK();
        });
    if (!admitted.ok()) return Fail(admitted.status().ToString());
  }
  builder.FitStreamFinish();
  std::cerr << "streaming fit: " << builder.vocabulary().size()
            << " vocabulary terms over " << stream_days << " days\n";

  // --- replay pass: pull-based streams over the live reader -----------------
  auto reader_or = TsvStreamReader::Open(path);
  if (!reader_or.ok()) return Fail(reader_or.status().ToString());
  const std::unique_ptr<TsvStreamReader> reader =
      std::move(reader_or).value();
  const Corpus& corpus = reader->corpus();

  const DenseMatrix sf0 = lexicon.BuildSf0(builder.vocabulary(), 3);
  OnlineConfig config;
  config.base.max_iterations = options.iters;
  config.base.track_loss = false;

  serving::CampaignEngine::Options engine_options;
  engine_options.num_threads = options.threads;
  serving::CampaignEngine engine(engine_options);
  const size_t num_streams = options.campaigns;
  for (size_t s = 0; s < num_streams; ++s) {
    engine.AddCampaign("topic-" + std::to_string(s), config, sf0, builder,
                       &corpus).ValueOrDie();
  }

  serving::ReplayDriver driver(&engine);
  // The day hook pulls day `d`'s chunk before the day's snapshots are
  // ingested, and releases day `d-1`'s text — Ingest tokenizes during the
  // day, so a chunk's text lives for exactly one replay day.
  TsvDayBatch batch;
  size_t max_chunk_tweets = 0;
  std::string stream_error;
  driver.set_day_hook([&](int day) {
    if (!stream_error.empty()) return;
    if (day > 0) reader->ReleaseText(batch);
    TsvDayBatch next;
    auto more = reader->NextDay(&next);
    if (!more.ok()) {
      stream_error = more.status().ToString();
    } else if (!more.value() || next.day != day) {
      stream_error = "stream ended before day " + std::to_string(day);
    }
    if (!stream_error.empty()) {
      batch = TsvDayBatch{};
      return;
    }
    max_chunk_tweets = std::max(max_chunk_tweets, next.tweet_ids.size());
    batch = std::move(next);
  });
  // Author-disjoint slices of the current chunk, matching
  // PartitionIntoStreams' user % num_streams sharding.
  for (size_t s = 0; s < num_streams; ++s) {
    driver.AddStream(s, stream_days, [&, s](int day) {
      Snapshot snap;
      snap.first_day = day;
      snap.last_day = day;
      for (size_t id : batch.tweet_ids) {
        if (corpus.tweets()[id].user % num_streams == s) {
          snap.tweet_ids.push_back(id);
        }
      }
      return snap;
    });
  }

  std::vector<std::vector<TriClusterResult>> streamed(num_streams);
  driver.set_snapshot_callback(
      [&](int /*day*/, const serving::CampaignEngine::SnapshotReport& r) {
        if (r.fitted) streamed[r.campaign].push_back(r.result);
      });
  TimelineEvaluator evaluator(&engine);
  evaluator.Attach(&driver);

  // Pacing/deadline/store knobs are ignored: this mode is about memory
  // shape and bit-identity, not wall-clock realism.
  serving::ReplayOptions replay_options;
  replay_options.max_days = options.max_days;
  serving::ReplayStats stats = driver.Replay(replay_options);
  evaluator.Annotate(&stats);
  if (!stream_error.empty()) {
    return Fail("streaming read failed mid-replay: " + stream_error);
  }

  // The memory bound, verified: after the replay only the final chunk may
  // still hold text.
  size_t tweets_with_text = 0;
  for (const Tweet& t : corpus.tweets()) {
    if (!t.text.empty()) ++tweets_with_text;
  }
  std::cout << "streamed " << stats.total_tweets << " tweets over "
            << stats.days.size() << " days holding at most one day-chunk "
            << "of text (largest chunk " << max_chunk_tweets
            << " tweets; " << tweets_with_text
            << " texts still resident)\n";
  if (tweets_with_text > max_chunk_tweets) {
    return Fail("streaming replay retained more than one day-chunk of text");
  }

  // --- whole-file pass over the same TSV, then bitwise comparison -----------
  auto loaded = ReadTsv(path);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const Corpus whole = std::move(loaded).value();
  MatrixBuilder whole_builder;
  whole_builder.Fit(whole);
  const DenseMatrix whole_sf0 = lexicon.BuildSf0(whole_builder.vocabulary(), 3);

  serving::CampaignEngine whole_engine(engine_options);
  for (size_t s = 0; s < num_streams; ++s) {
    whole_engine.AddCampaign("topic-" + std::to_string(s), config, whole_sf0,
                             whole_builder, &whole).ValueOrDie();
  }
  serving::ReplayDriver whole_driver(&whole_engine);
  const auto whole_streams = serving::PartitionIntoStreams(whole, num_streams);
  for (size_t s = 0; s < num_streams; ++s) {
    whole_driver.AddStream(s, whole_streams[s]);
  }
  std::vector<std::vector<TriClusterResult>> direct(num_streams);
  whole_driver.set_snapshot_callback(
      [&](int /*day*/, const serving::CampaignEngine::SnapshotReport& r) {
        if (r.fitted) direct[r.campaign].push_back(r.result);
      });
  TimelineEvaluator whole_evaluator(&whole_engine);
  whole_evaluator.Attach(&whole_driver);
  serving::ReplayOptions whole_options;
  whole_options.max_days = options.max_days;
  whole_driver.Replay(whole_options);

  bool identical = stream_days == whole.num_days();
  if (!identical) {
    std::cerr << "day horizon mismatch: streamed " << stream_days
              << " vs whole-file " << whole.num_days() << "\n";
  }
  for (size_t s = 0; s < num_streams && identical; ++s) {
    identical = streamed[s].size() == direct[s].size();
    for (size_t i = 0; i < streamed[s].size() && identical; ++i) {
      identical = streamed[s][i].su == direct[s][i].su &&
                  streamed[s][i].sp == direct[s][i].sp &&
                  streamed[s][i].sf == direct[s][i].sf;
    }
  }
  bool metrics_identical = true;
  for (size_t s = 0; s < num_streams && metrics_identical; ++s) {
    const auto& got = evaluator.timelines()[s].scores;
    const auto& expected = whole_evaluator.timelines()[s].scores;
    metrics_identical = got.size() == expected.size();
    for (size_t i = 0; i < got.size() && metrics_identical; ++i) {
      metrics_identical = SameScore(got[i], expected[i]);
    }
  }
  std::cout << "streamed replay vs whole-file replay (factors): "
            << (identical ? "bit-identical" : "MISMATCH (bug!)") << "\n";
  std::cout << "streamed accuracy timeline vs whole-file: "
            << (metrics_identical ? "bit-identical" : "MISMATCH (bug!)")
            << "\n";
  return identical && metrics_identical ? 0 : 1;
}

int RunReplay(const CliOptions& options) {
  if (!options.scenario.empty()) return RunScenarioMode(options);
  if (options.stream) return RunStreamingReplay(options);
  // --- load (or generate + round-trip) the corpus ---------------------------
  Corpus corpus;
  SentimentLexicon lexicon;
  if (options.input.empty()) {
    std::cerr << "demo mode: generating a synthetic campaign corpus\n";
    SyntheticConfig config = Prop30LikeConfig();
    config.num_days = 8;
    config.base_tweets_per_day = 120.0;
    config.num_users = 300;
    SyntheticDataset dataset = GenerateSynthetic(config);
    lexicon = CorruptLexicon(dataset.true_lexicon, 0.6, 0.05, 99);
    // Pid-unique default so concurrent demo runs (CI jobs, multiple
    // users on one host) never collide in /tmp.
    const std::string demo_path =
        options.write_demo.empty()
            ? "/tmp/triclust_replay_demo." + std::to_string(getpid()) +
                  ".tsv"
            : options.write_demo;
    const Status written = WriteTsv(dataset.corpus, demo_path);
    if (!written.ok()) return Fail(written.ToString());
    std::cerr << "wrote demo corpus to " << demo_path << "\n";
    auto loaded = ReadTsv(demo_path);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    corpus = std::move(loaded).value();
    if (options.write_demo.empty()) std::remove(demo_path.c_str());
  } else {
    auto loaded = ReadTsv(options.input);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    corpus = std::move(loaded).value();
    lexicon = SentimentLexicon::BuiltinEnglish();
    if (!options.write_demo.empty()) {
      // With --input, --write-demo re-exports the loaded corpus in the
      // canonical format (normalizes legacy files; see docs/FORMATS.md).
      const Status written = WriteTsv(corpus, options.write_demo);
      if (!written.ok()) return Fail(written.ToString());
      std::cerr << "re-exported corpus to " << options.write_demo << "\n";
    }
  }
  std::cerr << "corpus: " << corpus.num_tweets() << " tweets, "
            << corpus.num_users() << " users, " << corpus.num_days()
            << " days\n";
  if (corpus.num_tweets() == 0) return Fail("corpus has no tweets");

  // --- one fitted feature space, shared by every topic stream --------------
  MatrixBuilder builder;
  builder.Fit(corpus);
  const DenseMatrix sf0 = lexicon.BuildSf0(builder.vocabulary(), 3);
  OnlineConfig config;
  config.base.max_iterations = options.iters;
  config.base.track_loss = false;

  const auto streams =
      serving::PartitionIntoStreams(corpus, options.campaigns);

  serving::CampaignEngine::Options engine_options;
  engine_options.num_threads = options.threads;
  serving::CampaignEngine engine(engine_options);
  for (size_t s = 0; s < streams.size(); ++s) {
    engine.AddCampaign("topic-" + std::to_string(s), config, sf0, builder,
                       &corpus).ValueOrDie();
  }

  serving::ReplayDriver driver(&engine);
  for (size_t s = 0; s < streams.size(); ++s) {
    driver.AddStream(s, streams[s]);
  }

  // Capture each campaign's fitted factors for the verification pass.
  std::vector<std::vector<TriClusterResult>> replayed(streams.size());
  std::vector<std::vector<size_t>> replayed_sizes(streams.size());
  driver.set_snapshot_callback(
      [&](int /*day*/, const serving::CampaignEngine::SnapshotReport& r) {
        if (!r.fitted) return;
        replayed[r.campaign].push_back(r.result);
        replayed_sizes[r.campaign].push_back(r.data.num_tweets());
      });

  // The evaluation harness rides along as an additional observer and
  // scores every fitted snapshot against the corpus ground truth.
  TimelineEvaluator evaluator(&engine);
  evaluator.Attach(&driver);

  serving::ReplayOptions replay_options;
  replay_options.day_interval_ms = options.day_interval_ms;
  replay_options.speedup = options.speedup;
  replay_options.deadline_ms = options.deadline_ms;
  replay_options.max_days = options.max_days;
  serving::ReplayStats stats = driver.Replay(replay_options);
  evaluator.Annotate(&stats);

  // --- report ---------------------------------------------------------------
  TableWriter day_table("Replay timeline (one row per replayed day)");
  day_table.SetHeader({"day", "tweets", "fits", "deferred", "wait ms",
                       "advance ms", "tweet acc", "user acc"});
  for (const auto& d : stats.days) {
    day_table.AddRow({std::to_string(d.day), std::to_string(d.tweets),
                      std::to_string(d.fits), std::to_string(d.deferred),
                      TableWriter::Num(d.wait_ms, 1),
                      TableWriter::Num(d.advance_ms, 1),
                      TableWriter::Num(d.tweet_accuracy, 3),
                      TableWriter::Num(d.user_accuracy, 3)});
  }
  day_table.Print(std::cout);

  TableWriter campaign_table("Per-campaign replay stats");
  campaign_table.SetHeader({"campaign", "snapshots", "deferred", "tweets",
                            "mean solve ms", "max solve ms", "tweet acc",
                            "user acc"});
  for (const auto& c : stats.campaigns) {
    campaign_table.AddRow(
        {engine.name(c.campaign), std::to_string(c.snapshots),
         std::to_string(c.deferred), std::to_string(c.tweets),
         TableWriter::Num(c.MeanSolveMs(), 1),
         TableWriter::Num(c.solve_ms_max, 1),
         TableWriter::Num(c.tweet_accuracy, 3),
         TableWriter::Num(c.user_accuracy, 3)});
  }
  campaign_table.Print(std::cout);

  // --- accuracy timeline ----------------------------------------------------
  TableWriter eval_table(
      "Accuracy timeline (one row per fitted snapshot; '-' = nothing "
      "scored)");
  eval_table.SetHeader({"day", "campaign", "tweets scored", "tweet acc",
                        "tweet perm", "tweet NMI", "users scored",
                        "user acc", "user perm", "user NMI"});
  for (const auto& timeline : evaluator.timelines()) {
    for (const SnapshotScore& s : timeline.scores) {
      eval_table.AddRow({std::to_string(s.day), timeline.name,
                         std::to_string(s.tweets_scored),
                         TableWriter::Num(s.tweet_accuracy, 3),
                         TableWriter::Num(s.tweet_permutation_accuracy, 3),
                         TableWriter::Num(s.tweet_nmi, 3),
                         std::to_string(s.users_scored),
                         TableWriter::Num(s.user_accuracy, 3),
                         TableWriter::Num(s.user_permutation_accuracy, 3),
                         TableWriter::Num(s.user_nmi, 3)});
    }
  }
  eval_table.Print(std::cout);

  const TimelineAggregate aggregate = evaluator.RunAggregate();
  std::cout << "run accuracy (micro): tweet "
            << TableWriter::Num(aggregate.tweet_accuracy, 3) << " over "
            << aggregate.tweets_scored << " scored tweets, user "
            << TableWriter::Num(aggregate.user_accuracy, 3) << " over "
            << aggregate.users_scored << " scored users ("
            << aggregate.snapshots_scored << "/" << aggregate.snapshots
            << " snapshots scored)\n";

  if (!options.eval_csv.empty()) {
    const Status written = evaluator.WriteCsvFile(options.eval_csv);
    if (!written.ok()) {
      return Fail("eval csv write failed: " + written.ToString());
    }
    std::cout << "wrote accuracy timeline CSV to " << options.eval_csv
              << "\n";
  }

  if (options.require_metrics) {
    const bool scored =
        aggregate.tweets_scored > 0 && aggregate.users_scored > 0 &&
        std::isfinite(aggregate.tweet_accuracy) &&
        std::isfinite(aggregate.user_accuracy) &&
        std::isfinite(aggregate.tweet_nmi) &&
        std::isfinite(aggregate.user_nmi);
    if (!scored) {
      return Fail(
          "--require-metrics: evaluation produced no scored items or "
          "non-finite aggregate metrics");
    }
  }

  std::cout << "replayed " << stats.total_tweets << " tweets over "
            << stats.days.size() << " days in "
            << TableWriter::Num(stats.wall_ms, 0) << " ms ("
            << TableWriter::Num(stats.TweetsPerSecond(), 0)
            << " tweets/s, " << stats.total_deferred
            << " deferred fits)\n";

  // --- persist the fleet ----------------------------------------------------
  if (!options.store_dir.empty()) {
    const serving::CampaignStore store(options.store_dir);
    const Status saved = store.Save(engine);
    if (!saved.ok()) return Fail("store save failed: " + saved.ToString());
    std::cout << "checkpointed " << engine.num_campaigns()
              << " campaigns into " << options.store_dir << "\n";
  }

  // --- verify against a direct per-day solve --------------------------------
  if (options.verify) {
    if (options.deadline_ms > 0.0) {
      std::cout << "verification skipped: a deadline reshapes snapshot "
                   "boundaries, so a direct per-day run is not comparable\n";
      return 0;
    }
    bool identical = true;
    bool metrics_identical = true;
    for (size_t s = 0; s < streams.size(); ++s) {
      const SnapshotSolver solver(config, sf0);
      StreamState state;
      size_t cursor = 0;
      const std::vector<SnapshotScore>& scores =
          evaluator.timelines()[s].scores;
      const int days = options.max_days > 0
                           ? std::min<int>(options.max_days,
                                           static_cast<int>(streams[s].size()))
                           : static_cast<int>(streams[s].size());
      for (int day = 0; day < days; ++day) {
        const Snapshot& snap = streams[s][static_cast<size_t>(day)];
        const DatasetMatrices data =
            builder.Build(corpus, snap.tweet_ids, snap.last_day);
        const TriClusterResult expected = solver.Solve(data, &state);
        if (cursor >= replayed[s].size() ||
            replayed_sizes[s][cursor] != data.num_tweets() ||
            !(replayed[s][cursor].su == expected.su &&
              replayed[s][cursor].sp == expected.sp &&
              replayed[s][cursor].sf == expected.sf)) {
          identical = false;
        }
        // The replayed accuracy timeline must equal scoring the direct
        // solve — same scoring kernel, bit-identical factors in, so every
        // metric double must come out bit-for-bit equal.
        if (cursor >= scores.size() ||
            !SameScore(scores[cursor],
                       ScoreSnapshot(corpus, data, expected, day, s,
                                     snap.last_day))) {
          metrics_identical = false;
        }
        ++cursor;
      }
      if (cursor != replayed[s].size()) identical = false;
      if (cursor != scores.size()) metrics_identical = false;
    }
    std::cout << "replay vs direct per-day solve: "
              << (identical ? "bit-identical" : "MISMATCH (bug!)") << "\n";
    std::cout << "replayed accuracy timeline vs direct scoring: "
              << (metrics_identical ? "bit-identical" : "MISMATCH (bug!)")
              << "\n";
    return identical && metrics_identical ? 0 : 1;
  }
  return 0;
}

}  // namespace
}  // namespace triclust

int main(int argc, char** argv) {
  triclust::CliOptions options;
  if (!triclust::ParseArgs(argc, argv, &options)) {
    return triclust::Fail("bad arguments");
  }
  return triclust::RunReplay(options);
}
