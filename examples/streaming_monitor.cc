/// Streaming monitor: the online workflow (paper §4) as a daily campaign
/// dashboard. Consumes the stream one day at a time, prints the estimated
/// sentiment split, the population of new/evolving/disappeared users, flags
/// volume bursts, and — the paper's headline capability — reports users
/// whose estimated sentiment *changed*, with their ground-truth trajectory
/// for verification.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/streaming_monitor

#include <iostream>
#include <map>

#include "src/core/online.h"
#include "src/data/matrix_builder.h"
#include "src/data/snapshots.h"
#include "src/data/synthetic.h"
#include "src/eval/metrics.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

void Run() {
  // A campaign with a mid-stream burst (e.g. a debate night).
  SyntheticConfig config = Prop37LikeConfig();
  config.num_days = 21;
  const SyntheticDataset dataset = GenerateSynthetic(config);
  const Corpus& corpus = dataset.corpus;

  MatrixBuilder builder;
  builder.Fit(corpus);
  const SentimentLexicon lexicon =
      CorruptLexicon(dataset.true_lexicon, 0.6, 0.05, 7);

  OnlineConfig online_config;
  online_config.base.max_iterations = 60;
  online_config.base.track_loss = false;
  const DenseMatrix sf0 = lexicon.BuildSf0(
      builder.vocabulary(), online_config.base.num_clusters);
  OnlineTriClusterer online(online_config, sf0);

  // Last reported hard sentiment per user, to detect switches.
  std::map<size_t, int> last_reported;
  double volume_ema = 0.0;

  TableWriter table("Daily campaign dashboard (online tri-clustering)");
  table.SetHeader({"day", "tweets", "pos%", "neg%", "neu%", "new",
                   "evolving", "gone", "switchers", "acc%", "note"});

  size_t verified_switches = 0;
  size_t reported_switches = 0;
  for (const Snapshot& snap : SplitByDay(corpus)) {
    const DatasetMatrices data =
        builder.Build(corpus, snap.tweet_ids, snap.last_day);
    const TriClusterResult r = online.ProcessSnapshot(data);
    if (data.num_tweets() == 0) continue;

    // Map clusters to classes with the day's labeled subset (a deployment
    // would use the lexicon polarity of each cluster's top features).
    const auto tweet_clusters = r.TweetClusters();
    const auto mapping = MajorityVoteMapping(
        tweet_clusters, data.tweet_labels, online_config.base.num_clusters);

    double share[kNumSentimentClasses] = {0, 0, 0};
    for (int c : tweet_clusters) {
      ++share[SentimentIndex(mapping[static_cast<size_t>(c)])];
    }
    for (double& s : share) s = 100.0 * s / data.num_tweets();

    // Sentiment switchers among evolving users.
    size_t switchers = 0;
    const auto user_clusters = r.UserClusters();
    for (size_t j = 0; j < data.num_users(); ++j) {
      const size_t user = data.user_ids[j];
      const int now =
          SentimentIndex(mapping[static_cast<size_t>(user_clusters[j])]);
      const auto it = last_reported.find(user);
      if (it != last_reported.end() && it->second != now) {
        ++switchers;
        ++reported_switches;
        // Verify against the generator's hidden trajectory.
        if (SentimentIndex(corpus.UserSentimentAt(user, snap.last_day)) ==
            now) {
          ++verified_switches;
        }
      }
      last_reported[user] = now;
    }

    const double acc =
        100.0 * ClusteringAccuracy(tweet_clusters, data.tweet_labels);
    std::string note;
    if (volume_ema > 0.0 && data.num_tweets() > 2.5 * volume_ema) {
      note = "VOLUME BURST";
    }
    volume_ema = volume_ema == 0.0
                     ? data.num_tweets()
                     : 0.7 * volume_ema + 0.3 * data.num_tweets();

    table.AddRow({std::to_string(snap.last_day),
                  std::to_string(data.num_tweets()),
                  TableWriter::Num(share[0], 1),
                  TableWriter::Num(share[1], 1),
                  TableWriter::Num(share[2], 1),
                  std::to_string(online.last_partition().new_rows.size()),
                  std::to_string(
                      online.last_partition().evolving_rows.size()),
                  std::to_string(online.last_partition().num_disappeared),
                  std::to_string(switchers), TableWriter::Num(acc, 1),
                  note});
  }
  table.Print(std::cout);
  std::cout << "\nreported sentiment switches: " << reported_switches
            << " (of which " << verified_switches
            << " match the generator's hidden user trajectory)\n"
            << "Aggregate-volume dashboards miss these individual-level "
               "dynamics entirely (paper §1).\n";
}

}  // namespace
}  // namespace triclust

int main() {
  triclust::Run();
  return 0;
}
