/// Quickstart: generate a small campaign, run offline tri-clustering, and
/// print tweet-level and user-level accuracy.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <iostream>

#include "src/core/offline.h"
#include "src/data/matrix_builder.h"
#include "src/data/synthetic.h"
#include "src/eval/metrics.h"

int main() {
  using namespace triclust;

  // 1. Data: a synthetic Prop-30-like Twitter campaign (the paper's real
  //    collection is proprietary; see DESIGN.md §4).
  const SyntheticDataset dataset = GenerateSynthetic(Prop30LikeConfig());
  const Corpus& corpus = dataset.corpus;
  std::cout << "corpus: " << corpus.num_tweets() << " tweets, "
            << corpus.num_users() << " users, " << corpus.num_days()
            << " days\n";

  // 2. Matrices: the three bipartite graphs + user graph, and the lexicon
  //    prior Sf0 built from an imperfect word list (60% coverage, 5% noise).
  MatrixBuilder builder;
  builder.Fit(corpus);
  const DatasetMatrices data = builder.BuildAll(corpus);
  const SentimentLexicon lexicon =
      CorruptLexicon(dataset.true_lexicon, /*coverage=*/0.6,
                     /*error_rate=*/0.05, /*seed=*/99);
  TriClusterConfig config;  // α=0.05, β=0.8: the paper's offline setting
  const DenseMatrix sf0 =
      lexicon.BuildSf0(builder.vocabulary(), config.num_clusters);

  // 3. Solve (Algorithm 1).
  const TriClusterResult result = OfflineTriClusterer(config).Run(data, sf0);
  std::cout << "solver: " << result.iterations << " iterations, converged="
            << (result.converged ? "yes" : "no") << "\n";
  if (!result.loss_history.empty()) {
    std::cout << "objective: " << result.loss_history.front().Total()
              << " -> " << result.loss_history.back().Total() << "\n";
  }

  // 4. Score against ground truth.
  const double tweet_acc =
      ClusteringAccuracy(result.TweetClusters(), data.tweet_labels);
  const double tweet_nmi = NormalizedMutualInformation(result.TweetClusters(),
                                                       data.tweet_labels);
  const double user_acc =
      ClusteringAccuracy(result.UserClusters(), data.user_labels);
  const double user_nmi = NormalizedMutualInformation(result.UserClusters(),
                                                      data.user_labels);
  std::cout << "tweet-level: accuracy=" << 100.0 * tweet_acc
            << "% NMI=" << 100.0 * tweet_nmi << "%\n";
  std::cout << "user-level:  accuracy=" << 100.0 * user_acc
            << "% NMI=" << 100.0 * user_nmi << "%\n";
  return 0;
}
