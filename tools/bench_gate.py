#!/usr/bin/env python3
"""Noise-aware benchmark regression gate.

Compares a candidate ``bench_report.json`` (written by
``tools/bench_runner.py``, schema ``triclust-bench-report/1``) against a
checked-in baseline report::

    python3 tools/bench_gate.py bench_report.json \
        --baseline bench/baselines/validate.json

A scenario REGRESSES only when both of these hold for its wall time:

1. the candidate mean exceeds the baseline mean by more than the threshold
   (default 10%, configurable globally and per scenario), AND
2. the confidence intervals separate: the candidate's 95% CI lower bound
   lies above the baseline's 95% CI upper bound.

Condition 2 is what makes the gate noise-aware — overlapping CIs mean the
difference is not statistically distinguishable at the chosen repetition
count, so no amount of threshold tuning should fail the build over it.
With single-sample reports the CIs are zero-width and the gate degrades to
a plain threshold comparison.

The baseline file is a full runner report plus an optional top-level
``gate`` block::

    "gate": {
      "threshold_pct": 10,
      "overrides": {"bench_serving/serving/...": {"threshold_pct": 25}},
      "counter_gates": [
        {"key": "bench_table4_tweet_level/table4/tweet_level/triclust",
         "counter": "accuracy_prop30_pct",
         "direction": "higher", "threshold_pct": 5}
      ]
    }

``counter_gates`` extend the gate to quality counters: ``direction`` says
which way is good (``higher`` for accuracies, ``lower`` for costs). The
same two-part rule applies with the inequalities flipped as needed.

Hard failures regardless of thresholds: schema mismatch between the two
reports, a scenario present in the baseline but missing from the candidate
(a silently vanished benchmark is itself a regression), and binaries the
runner recorded as failed. Scenarios only in the candidate are reported as
notes — refresh the baseline to start tracking them.

``--mode advisory`` prints the full verdict but always exits 0 — this is
what CI uses on shared runners, where machine-to-machine variance makes a
frozen wall-time baseline unenforceable. ``--mode enforcing`` (default)
exits 1 on any regression. ``--update-baseline`` rewrites the baseline
file from the candidate report, preserving the existing ``gate`` block.

``--self-test`` runs the built-in unit tests (registered with ctest as
``bench_gate_selftest``).
"""

import argparse
import copy
import json
import sys

REPORT_SCHEMA = "triclust-bench-report/1"
DEFAULT_THRESHOLD_PCT = 10.0


def load_report(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema != REPORT_SCHEMA:
        raise ValueError(
            f"{path}: schema {schema!r}, expected {REPORT_SCHEMA!r} "
            "(regenerate with tools/bench_runner.py)")
    return doc


def scenarios_by_key(report):
    return {s["key"]: s for s in report.get("scenarios", [])}


def ci_bounds(stats):
    half = stats.get("ci95_half", 0.0)
    return stats["mean"] - half, stats["mean"] + half


def check_metric(base_stats, cand_stats, threshold_pct, direction="lower"):
    """Applies the two-part rule. Returns (regressed, delta_pct, separated).

    ``direction`` is the good direction for the metric: "lower" (times,
    costs) or "higher" (accuracies). delta_pct is the candidate's change
    relative to the baseline mean, signed so that positive = worse.
    """
    base_mean = base_stats["mean"]
    cand_mean = cand_stats["mean"]
    base_low, base_high = ci_bounds(base_stats)
    cand_low, cand_high = ci_bounds(cand_stats)
    if base_mean == 0.0:
        # Zero baseline (e.g. a deterministic zero counter): any nonzero
        # candidate in the bad direction is an infinite relative change;
        # fall back to CI separation alone.
        worse = cand_mean > 0.0 if direction == "lower" else cand_mean < 0.0
        separated = (cand_low > base_high if direction == "lower"
                     else cand_high < base_low)
        return worse and separated, float("inf") if worse else 0.0, separated
    if direction == "lower":
        delta_pct = (cand_mean / base_mean - 1.0) * 100.0
        beyond = cand_mean > base_mean * (1.0 + threshold_pct / 100.0)
        separated = cand_low > base_high
    else:
        delta_pct = (1.0 - cand_mean / base_mean) * 100.0
        beyond = cand_mean < base_mean * (1.0 - threshold_pct / 100.0)
        separated = cand_high < base_low
    return beyond and separated, delta_pct, separated


def run_gate(baseline, candidate, default_threshold=None):
    """Compares two reports. Returns (regressions, hard_failures, notes).

    regressions: [(label, message)] — threshold+CI violations.
    hard_failures: [(label, message)] — missing scenarios, failed binaries.
    notes: [str] — informational (new scenarios, CI-overlap saves).
    """
    gate_cfg = baseline.get("gate", {})
    threshold = default_threshold if default_threshold is not None \
        else float(gate_cfg.get("threshold_pct", DEFAULT_THRESHOLD_PCT))
    overrides = gate_cfg.get("overrides", {})

    base_by_key = scenarios_by_key(baseline)
    cand_by_key = scenarios_by_key(candidate)

    regressions = []
    hard_failures = []
    notes = []

    for binary in candidate.get("failures", []):
        hard_failures.append(
            (binary, "binary failed during the candidate run"))

    for key in sorted(base_by_key):
        if key not in cand_by_key:
            hard_failures.append(
                (key, "scenario in baseline but missing from candidate"))
            continue
        scenario_threshold = float(
            overrides.get(key, {}).get("threshold_pct", threshold))
        regressed, delta_pct, separated = check_metric(
            base_by_key[key]["real_time"], cand_by_key[key]["real_time"],
            scenario_threshold, direction="lower")
        if regressed:
            regressions.append(
                (key, f"real_time +{delta_pct:.1f}% "
                      f"(threshold {scenario_threshold:.1f}%, CIs separate)"))
        elif delta_pct > scenario_threshold and not separated:
            notes.append(
                f"{key}: real_time +{delta_pct:.1f}% but CIs overlap — "
                "not statistically distinguishable, not failing")

    for gate in gate_cfg.get("counter_gates", []):
        key = gate["key"]
        counter = gate["counter"]
        direction = gate.get("direction", "lower")
        gate_threshold = float(gate.get("threshold_pct", threshold))
        label = f"{key}#{counter}"
        base_scenario = base_by_key.get(key)
        cand_scenario = cand_by_key.get(key)
        if base_scenario is None:
            hard_failures.append(
                (label, "counter gate references a key absent from the "
                        "baseline report"))
            continue
        if cand_scenario is None:
            continue  # already a hard failure above
        base_stats = base_scenario.get("counters", {}).get(counter)
        cand_stats = cand_scenario.get("counters", {}).get(counter)
        if base_stats is None or cand_stats is None:
            hard_failures.append(
                (label, "gated counter missing from "
                        + ("baseline" if base_stats is None else "candidate")))
            continue
        regressed, delta_pct, _ = check_metric(
            base_stats, cand_stats, gate_threshold, direction=direction)
        if regressed:
            worse_word = "dropped" if direction == "higher" else "rose"
            regressions.append(
                (label, f"{worse_word} {delta_pct:.1f}% "
                        f"(threshold {gate_threshold:.1f}%, CIs separate)"))

    for key in sorted(set(cand_by_key) - set(base_by_key)):
        notes.append(f"{key}: new scenario, not in baseline "
                     "(refresh with --update-baseline to track it)")

    return regressions, hard_failures, notes


def update_baseline(baseline_path, candidate):
    """Writes the candidate as the new baseline, keeping the gate block."""
    gate_cfg = None
    try:
        with open(baseline_path, "r", encoding="utf-8") as fh:
            gate_cfg = json.load(fh).get("gate")
    except (FileNotFoundError, json.JSONDecodeError):
        pass
    doc = copy.deepcopy(candidate)
    if gate_cfg is not None:
        doc["gate"] = gate_cfg
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def main():
    parser = argparse.ArgumentParser(
        description="Gate a benchmark report against a frozen baseline "
                    "(see docs/BENCHMARK.md).")
    parser.add_argument("report", nargs="?",
                        help="candidate bench_report.json")
    parser.add_argument("--baseline", default=None,
                        help="baseline report (e.g. "
                             "bench/baselines/validate.json)")
    parser.add_argument("--threshold", type=float, default=None, metavar="PCT",
                        help="override the global regression threshold")
    parser.add_argument("--mode", choices=("enforcing", "advisory"),
                        default="enforcing",
                        help="advisory prints the verdict but exits 0")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the candidate "
                             "report, preserving its gate block")
    parser.add_argument("--self-test", action="store_true",
                        help="run built-in unit tests and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.report or not args.baseline:
        parser.error("report and --baseline are required "
                     "(unless --self-test)")

    candidate = load_report(args.report)
    if args.update_baseline:
        update_baseline(args.baseline, candidate)
        print(f"[bench_gate] baseline {args.baseline} updated from "
              f"{args.report}")
        return 0
    baseline = load_report(args.baseline)

    if baseline.get("profile") != candidate.get("profile"):
        print(f"[bench_gate] warning: comparing profile "
              f"{candidate.get('profile')!r} against baseline profile "
              f"{baseline.get('profile')!r}", file=sys.stderr)

    regressions, hard_failures, notes = run_gate(
        baseline, candidate, default_threshold=args.threshold)

    for note in notes:
        print(f"[bench_gate] note: {note}")
    for label, message in hard_failures:
        print(f"[bench_gate] HARD FAILURE: {label}: {message}")
    for label, message in regressions:
        print(f"[bench_gate] REGRESSION: {label}: {message}")

    failed = bool(regressions or hard_failures)
    compared = len(scenarios_by_key(baseline))
    verdict = "FAIL" if failed else "PASS"
    print(f"[bench_gate] {verdict}: {compared} scenario(s) compared, "
          f"{len(regressions)} regression(s), "
          f"{len(hard_failures)} hard failure(s) [mode={args.mode}]")
    if failed and args.mode == "advisory":
        print("[bench_gate] advisory mode: not failing the build")
        return 0
    return 1 if failed else 0


# --------------------------------------------------------------------------
# Self-test.

def _check(condition, label):
    if not condition:
        raise AssertionError(label)
    print(f"  ok: {label}")


def _report(scenarios, failures=(), gate=None, profile="validate"):
    doc = {
        "schema": REPORT_SCHEMA,
        "profile": profile,
        "min_time": "0.01x",
        "repetitions": 3,
        "warmup": 0,
        "binaries": {},
        "failures": list(failures),
        "scenarios": scenarios,
    }
    if gate is not None:
        doc["gate"] = gate
    return doc


def _scenario(key, mean, ci=0.0, counters=None):
    binary, _, name = key.partition("/")
    stats = {"mean": mean, "stddev": ci, "min": mean - ci, "max": mean + ci,
             "ci95_half": ci, "n": 3}
    return {
        "binary": binary, "name": name, "key": key, "time_unit": "ms",
        "real_time": stats,
        "counters": {
            k: {"mean": v, "stddev": c, "min": v - c, "max": v + c,
                "ci95_half": c, "n": 3}
            for k, (v, c) in (counters or {}).items()
        },
    }


def self_test():
    print("bench_gate self-test")

    base = _report([_scenario("b/s", 100.0, ci=5.0)])
    # Identical candidate passes.
    r, h, _ = run_gate(base, _report([_scenario("b/s", 100.0, ci=5.0)]))
    _check(not r and not h, "identical report passes")

    # Clear regression: +50%, CIs separate.
    r, h, _ = run_gate(base, _report([_scenario("b/s", 150.0, ci=5.0)]))
    _check(len(r) == 1 and not h, "mean +50% with separated CIs fails")

    # Over threshold but CIs overlap -> noise, passes with a note.
    r, h, notes = run_gate(
        base, _report([_scenario("b/s", 115.0, ci=20.0)]))
    _check(not r and any("CIs overlap" in n for n in notes),
           "CI overlap suppresses a nominal +15%")

    # Under threshold but separated -> passes (both conditions required).
    r, _, _ = run_gate(base, _report([_scenario("b/s", 107.0, ci=0.5)]))
    _check(not r, "+7% under the 10% threshold passes even when separated")

    # Zero-CI reports degrade to the plain threshold rule.
    base0 = _report([_scenario("b/s", 100.0)])
    r, _, _ = run_gate(base0, _report([_scenario("b/s", 111.0)]))
    _check(len(r) == 1, "n=1 zero-width CIs: +11% fails the 10% threshold")
    r, _, _ = run_gate(base0, _report([_scenario("b/s", 109.0)]))
    _check(not r, "n=1 zero-width CIs: +9% passes")

    # Speedups never fail.
    r, _, _ = run_gate(base, _report([_scenario("b/s", 50.0, ci=1.0)]))
    _check(not r, "a speedup passes")

    # Missing scenario is a hard failure; new scenario is a note.
    r, h, notes = run_gate(base, _report([_scenario("b/other", 1.0)]))
    _check(len(h) == 1 and "missing" in h[0][1], "missing scenario is hard")
    _check(any("new scenario" in n for n in notes), "new scenario is a note")

    # Failed binaries recorded by the runner are hard failures.
    _, h, _ = run_gate(base, _report([_scenario("b/s", 100.0, ci=5.0)],
                                     failures=["bench_broken"]))
    _check(len(h) == 1, "runner-recorded binary failure is hard")

    # Per-scenario override loosens the global threshold.
    base_ov = _report(
        [_scenario("b/s", 100.0, ci=1.0)],
        gate={"threshold_pct": 10,
              "overrides": {"b/s": {"threshold_pct": 60}}})
    r, _, _ = run_gate(base_ov, _report([_scenario("b/s", 150.0, ci=1.0)]))
    _check(not r, "per-scenario override to 60% lets +50% pass")
    r, _, _ = run_gate(base_ov, _report([_scenario("b/s", 170.0, ci=1.0)]))
    _check(len(r) == 1, "override still fails beyond its own threshold")

    # Counter gate, direction=higher (accuracy must not drop).
    gate = {"threshold_pct": 10,
            "counter_gates": [{"key": "b/s", "counter": "acc_pct",
                               "direction": "higher", "threshold_pct": 5}]}
    base_c = _report([_scenario("b/s", 100.0, ci=1.0,
                                counters={"acc_pct": (80.0, 1.0)})],
                     gate=gate)
    r, _, _ = run_gate(base_c, _report(
        [_scenario("b/s", 100.0, ci=1.0, counters={"acc_pct": (70.0, 1.0)})]))
    _check(len(r) == 1 and "acc_pct" in r[0][0],
           "accuracy drop beyond 5% with separated CIs fails")
    r, _, _ = run_gate(base_c, _report(
        [_scenario("b/s", 100.0, ci=1.0, counters={"acc_pct": (79.0, 1.0)})]))
    _check(not r, "accuracy wobble within threshold passes")
    _, h, _ = run_gate(base_c, _report(
        [_scenario("b/s", 100.0, ci=1.0)]))
    _check(any("gated counter missing" in m for _, m in h),
           "vanished gated counter is a hard failure")

    # Schema mismatch refuses to load.
    import tempfile, os
    with tempfile.TemporaryDirectory() as tmp:
        bad = os.path.join(tmp, "bad.json")
        with open(bad, "w", encoding="utf-8") as fh:
            json.dump({"schema": "something-else/9", "scenarios": []}, fh)
        try:
            load_report(bad)
            raise AssertionError("schema mismatch should raise")
        except ValueError:
            print("  ok: schema mismatch raises ValueError")

        # --update-baseline preserves the gate block.
        baseline_path = os.path.join(tmp, "baseline.json")
        with open(baseline_path, "w", encoding="utf-8") as fh:
            json.dump(base_c, fh)
        update_baseline(baseline_path,
                        _report([_scenario("b/s", 42.0, ci=1.0)]))
        with open(baseline_path, encoding="utf-8") as fh:
            updated = json.load(fh)
        _check(updated["gate"] == gate, "update-baseline keeps gate block")
        _check(updated["scenarios"][0]["real_time"]["mean"] == 42.0,
               "update-baseline takes candidate stats")

    print("bench_gate self-test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
