#!/usr/bin/env python3
"""Negative-compile check for the thread-safety annotations.

Proves the Clang Thread Safety Analysis actually bites on this build:

  1. compiles tools/ts_fixtures/thread_safety_clean.cc with
     -Wthread-safety -Werror=thread-safety  -> must SUCCEED
  2. compiles tools/ts_fixtures/thread_safety_bad.cc (a seeded
     guarded-write-without-lock violation) with the same flags
     -> must FAIL, with a diagnostic naming -Wthread-safety

Compilers without the analysis (GCC) cannot run the check; the script
then exits 77, which ctest maps to SKIPPED via SKIP_RETURN_CODE. The
probe is behavioral, not name-based: a compiler that accepts the flags
but silently analyzes nothing is caught by step 2.

Usage:
  check_negative_compile.py --compiler <c++ compiler> --repo-root <dir>
"""

import argparse
import os
import shutil
import subprocess
import sys
import tempfile

SKIP = 77
FLAGS = ["-std=c++17", "-Wthread-safety", "-Werror=thread-safety",
         "-fsyntax-only"]


def compile_fixture(compiler, repo_root, fixture, out_dir):
    """Runs the compiler on one fixture; returns (returncode, output)."""
    cmd = [compiler, *FLAGS, "-I", repo_root,
           os.path.join(repo_root, "tools", "ts_fixtures", fixture)]
    proc = subprocess.run(cmd, cwd=out_dir, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", default=os.environ.get("CXX", "c++"))
    parser.add_argument("--repo-root",
                        default=os.path.dirname(
                            os.path.dirname(os.path.abspath(__file__))))
    args = parser.parse_args()

    if shutil.which(args.compiler) is None:
        print(f"SKIP: compiler not found: {args.compiler}")
        return SKIP

    with tempfile.TemporaryDirectory() as out_dir:
        # Probe: does this compiler support the analysis at all? GCC
        # rejects -Wthread-safety as an unknown warning under -Werror,
        # failing the *clean* fixture — that is a skip, not a failure.
        rc, out = compile_fixture(args.compiler, args.repo_root,
                                  "thread_safety_clean.cc", out_dir)
        if rc != 0:
            if "thread-safety" in out or "unrecognized" in out.lower():
                print(f"SKIP: {args.compiler} does not support "
                      "-Wthread-safety (clang required):")
                print(out)
                return SKIP
            print("FAIL: clean fixture did not compile — the annotations "
                  "in src/util are broken:")
            print(out)
            return 1

        # The seeded violation must be rejected.
        rc, out = compile_fixture(args.compiler, args.repo_root,
                                  "thread_safety_bad.cc", out_dir)
        if rc == 0:
            print("FAIL: the seeded thread-safety violation in "
                  "thread_safety_bad.cc COMPILED — the analysis is not "
                  "firing (flags dropped, or the compiler silently "
                  "ignores the annotations).")
            return 1
        if "thread safety" not in out and "-Wthread-safety" not in out:
            print("FAIL: bad fixture failed to compile, but not with a "
                  "thread-safety diagnostic:")
            print(out)
            return 1

    print("OK: clean fixture compiles; seeded violation rejected by "
          "-Werror=thread-safety.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
