#!/usr/bin/env python3
"""Project-invariant linter for the triclust repo.

Grep-resistant architectural invariants that neither the compiler nor the
unit suite can see break:

  fs-seam           All file I/O in src/ goes through the FileSystem seam
                    (src/util/fs.h) so fault injection and the crash-matrix
                    tests cover it. Direct <fstream>/fopen/POSIX descriptor
                    I/O is only allowed inside src/util/.
  determinism       Solver and kernel code (src/core, src/matrix,
                    src/baselines) must be a pure function of its inputs:
                    no system randomness, no wall-clock reads. Randomness
                    comes from the seeded triclust::Rng; time belongs to
                    the serving layer.
  avx2-confinement  AVX2 intrinsics live in src/matrix/kernels_avx2.cc and
                    nowhere else — it is the single TU compiled with
                    -mavx2, which is what keeps AVX2 code off non-AVX2
                    hosts (see CMakeLists.txt).
  kernel-coverage   Every kernel body declared in src/matrix/kernels.h
                    must appear by name in tests/kernel_dispatch_test.cc
                    (the dispatch-table coverage test) so a new body
                    cannot ship without a pinned selection expectation.

A finding can be waived on its own line (or the line above) with a
comment naming the rule:  // lint-allow(fs-seam): <why>

Exit status: 0 = clean, 1 = violations (printed as path:line: [rule] msg).
--self-test runs every rule against the golden fixtures in
tools/lint_fixtures/ — each bad fixture must be rejected by exactly its
rule, each clean fixture accepted — so a rule that rots into matching
nothing fails ctest, not just code review.
"""

import argparse
import os
import re
import sys

SOURCE_EXTENSIONS = (".cc", ".h")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_line_comment(line):
    """Removes a // comment (good enough: no // inside string literals in
    this codebase's match surface)."""
    idx = line.find("//")
    return line if idx == -1 else line[:idx]


def waived(lines, index, rule):
    """True when line `index` (0-based) carries or follows a lint-allow
    comment naming `rule`."""
    here = lines[index]
    above = lines[index - 1] if index > 0 else ""
    marker = f"lint-allow({rule})"
    return marker in here or marker in above


def scan_patterns(path, lines, rule, patterns, message):
    """Applies (compiled regex, description) pairs line by line, comment
    stripped, honoring waivers."""
    out = []
    in_block_comment = False
    for i, raw in enumerate(lines):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end == -1:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start != -1 and line.find("*/", start) == -1:
            in_block_comment = True
            line = line[:start]
        code = strip_line_comment(line)
        for pattern, what in patterns:
            if pattern.search(code) and not waived(lines, i, rule):
                out.append(Violation(path, i + 1, rule,
                                     f"{what}; {message}"))
    return out


# --- rule: fs-seam -----------------------------------------------------------

FS_SEAM_PATTERNS = [
    (re.compile(r'#\s*include\s*<fstream>'), "includes <fstream>"),
    (re.compile(r'\bstd::[iof]?fstream\b'), "uses a std::fstream type"),
    (re.compile(r'\bf(open|reopen)\s*\('), "opens a C stdio stream"),
    (re.compile(r'::(open|creat)\s*\('), "opens a POSIX descriptor"),
]


def check_fs_seam(files):
    out = []
    for path, lines in files:
        norm = path.replace(os.sep, "/")
        if not norm.startswith("src/") or norm.startswith("src/util/"):
            continue
        out.extend(scan_patterns(
            path, lines, "fs-seam", FS_SEAM_PATTERNS,
            "file I/O outside src/util must go through the FileSystem "
            "seam (src/util/fs.h) so fault injection covers it"))
    return out


# --- rule: determinism -------------------------------------------------------

DETERMINISM_PATTERNS = [
    (re.compile(r'\b(s?rand)\s*\('), "calls rand()/srand()"),
    (re.compile(r'\bstd::random_device\b'), "uses std::random_device"),
    (re.compile(r'\btime\s*\(\s*(NULL|nullptr|0)?\s*\)'),
     "reads wall-clock time()"),
    (re.compile(r'\bsystem_clock\b'), "reads std::chrono::system_clock"),
]


def check_determinism(files):
    out = []
    for path, lines in files:
        out.extend(scan_patterns(
            path, lines, "determinism", DETERMINISM_PATTERNS,
            "solver/kernel code must be deterministic: seeded "
            "triclust::Rng for randomness, no wall-clock reads"))
    return out


# --- rule: avx2-confinement --------------------------------------------------

AVX2_PATTERNS = [
    (re.compile(r'#\s*include\s*[<"]immintrin\.h[>"]'),
     "includes immintrin.h"),
    (re.compile(r'\b_mm256_\w+'), "uses an _mm256_* intrinsic"),
    (re.compile(r'\b__m256'), "uses an __m256 vector type"),
]


def check_avx2_confinement(files, allowed_suffix="src/matrix/kernels_avx2.cc"):
    out = []
    for path, lines in files:
        if path.replace(os.sep, "/").endswith(allowed_suffix):
            continue
        out.extend(scan_patterns(
            path, lines, "avx2-confinement", AVX2_PATTERNS,
            "AVX2 code is confined to src/matrix/kernels_avx2.cc, the "
            "single -mavx2 TU"))
    return out


# --- rule: kernel-coverage ---------------------------------------------------

KERNEL_DECL = re.compile(r'^(?:void|double|bool)\s+(\w+)\(', re.M)
# Declared in kernels.h but not a kernel body (probe forwarded from the
# public dispatch header; covered by its own tests).
KERNEL_COVERAGE_EXEMPT = {"Avx2KernelsCompiled"}


def check_kernel_coverage(kernels_header, dispatch_test):
    out = []
    try:
        with open(kernels_header) as f:
            header_text = f.read()
        with open(dispatch_test) as f:
            test_text = f.read()
    except OSError as e:
        return [Violation(kernels_header, 1, "kernel-coverage",
                          f"cannot read inputs: {e}")]
    for match in KERNEL_DECL.finditer(header_text):
        name = match.group(1)
        if name in KERNEL_COVERAGE_EXEMPT:
            continue
        if name not in test_text:
            line = header_text.count("\n", 0, match.start()) + 1
            out.append(Violation(
                kernels_header, line, "kernel-coverage",
                f"kernel body {name} is not referenced by "
                f"{os.path.basename(dispatch_test)}; add a dispatch-table "
                "expectation for it"))
    return out


# --- repo scan ---------------------------------------------------------------

def load_tree(root, subdirs):
    files = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, names in sorted(os.walk(base)):
            for name in sorted(names):
                if not name.endswith(SOURCE_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, errors="replace") as f:
                    files.append((os.path.relpath(path, root),
                                  f.read().splitlines()))
    return files


def lint_repo(root):
    violations = []
    src_files = load_tree(root, ["src"])
    violations += check_fs_seam(src_files)
    solver_files = [(p, l) for p, l in src_files
                    if p.replace(os.sep, "/").startswith(
                        ("src/core/", "src/matrix/", "src/baselines/"))]
    violations += check_determinism(solver_files)
    violations += check_avx2_confinement(
        load_tree(root, ["src", "tests", "bench", "examples"]))
    violations += check_kernel_coverage(
        os.path.join(root, "src", "matrix", "kernels.h"),
        os.path.join(root, "tests", "kernel_dispatch_test.cc"))
    return violations


# --- self-test on the golden fixtures ----------------------------------------

def read_fixture(fixtures, name):
    path = os.path.join(fixtures, name)
    with open(path) as f:
        return (os.path.join("src", "fixture", name), f.read().splitlines())


def self_test(root):
    fixtures = os.path.join(root, "tools", "lint_fixtures")
    failures = []

    def expect(label, violations, rule, want_hit):
        hits = [v for v in violations if v.rule == rule]
        if want_hit and not hits:
            failures.append(f"{label}: expected a {rule} violation, got none")
        if not want_hit and hits:
            failures.append(f"{label}: expected clean, got: "
                            + "; ".join(str(v) for v in hits))

    expect("fs_seam_bad",
           check_fs_seam([read_fixture(fixtures, "fs_seam_bad.cc")]),
           "fs-seam", True)
    expect("fs_seam_clean",
           check_fs_seam([read_fixture(fixtures, "fs_seam_clean.cc")]),
           "fs-seam", False)
    expect("determinism_bad",
           check_determinism([read_fixture(fixtures, "determinism_bad.cc")]),
           "determinism", True)
    expect("determinism_clean",
           check_determinism(
               [read_fixture(fixtures, "determinism_clean.cc")]),
           "determinism", False)
    expect("avx2_bad",
           check_avx2_confinement(
               [read_fixture(fixtures, "avx2_bad.cc")]),
           "avx2-confinement", True)
    expect("avx2_clean",
           check_avx2_confinement(
               [read_fixture(fixtures, "avx2_clean.cc")]),
           "avx2-confinement", False)
    expect("kernel_coverage_missing",
           check_kernel_coverage(
               os.path.join(fixtures, "kernel_coverage_kernels.h"),
               os.path.join(fixtures, "kernel_coverage_test_missing.cc")),
           "kernel-coverage", True)
    expect("kernel_coverage_full",
           check_kernel_coverage(
               os.path.join(fixtures, "kernel_coverage_kernels.h"),
               os.path.join(fixtures, "kernel_coverage_test_full.cc")),
           "kernel-coverage", False)

    if failures:
        print("lint_invariants self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print("lint_invariants self-test OK: every rule rejects its bad "
          "fixture and accepts its clean one.")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="triclust project-invariant linter")
    parser.add_argument("--repo-root",
                        default=os.path.dirname(
                            os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--self-test", action="store_true",
                        help="run the rules against the golden fixtures "
                             "instead of the repo")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.repo_root)

    violations = lint_repo(args.repo_root)
    for v in violations:
        print(v)
    if violations:
        print(f"\n{len(violations)} invariant violation(s). Waive a "
              "deliberate exception with // lint-allow(<rule>): <why>")
        return 1
    print("lint_invariants OK: fs-seam, determinism, avx2-confinement, "
          "kernel-coverage all hold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
