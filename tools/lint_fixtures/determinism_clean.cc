// Golden clean fixture for the determinism rule: seeded project Rng,
// identifiers that merely contain the banned substrings, and a waived
// deliberate exception.
#include "src/util/rng.h"

namespace triclust {

double DeterministicInit(uint64_t seed) {
  Rng rng(seed);  // seeded: same seed, same stream, on every machine
  return rng.Uniform(0.0, 1.0);
}

// `runtime(...)` and `operand(...)` contain "time(" / "rand(" as
// substrings only; word boundaries must keep them clean.
double runtime(int x);
double operand(int x);
double UsesLookalikes() { return runtime(1) + operand(2); }

int WaivedWallClock() {
  // lint-allow(determinism): exercising the waiver syntax in the self-test
  return static_cast<int>(time(nullptr));
}

}  // namespace triclust
