// Golden violation for the avx2-confinement rule: AVX2 intrinsics outside
// src/matrix/kernels_avx2.cc would be compiled without -mavx2 (ICE or
// silent scalarization) or, worse, leak AVX2 code into TUs that run on
// non-AVX2 hosts. Every construct below must be flagged.
#include <immintrin.h>

double SumFourLanes(const double* p) {
  __m256d v = _mm256_loadu_pd(p);
  __m256d hi = _mm256_permute2f128_pd(v, v, 1);
  __m256d s = _mm256_add_pd(v, hi);
  return _mm256_cvtsd_f64(s) + _mm256_cvtsd_f64(_mm256_permute_pd(s, 1));
}
