// Golden clean fixture for the fs-seam rule: file I/O through the
// FileSystem seam, plus the shapes the rule must NOT trip on — mentions
// of fstream in comments, Open() methods of project types, and a waived
// deliberate exception.
#include <string>

#include "src/util/fs.h"
#include "src/util/status.h"

namespace triclust {

// Talking about std::ifstream in a comment is fine; opening one is not.
Status CopyThroughSeam(const std::string& from, const std::string& to) {
  FileSystem* fs = GetDefaultFileSystem();
  TRICLUST_ASSIGN_OR_RETURN(std::string data, fs->ReadFileToString(from));
  TRICLUST_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                            fs->NewWritableFile(to));
  TRICLUST_RETURN_IF_ERROR(file->Append(data));
  return file->Close();
}

struct Reader {
  bool Open(const std::string& path);  // project Open(), not POSIX open()
};

bool WaivedException(const char* path) {
  // lint-allow(fs-seam): exercising the waiver syntax in the self-test
  FILE* f = fopen(path, "r");
  if (f != nullptr) fclose(f);
  return f != nullptr;
}

}  // namespace triclust
