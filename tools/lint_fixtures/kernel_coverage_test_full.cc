// Golden fixture "test" referencing every body declared by
// kernel_coverage_kernels.h — the kernel-coverage rule must accept it.
void CoverageTestFull() {
  // CoveredKernelBody, CoveredReductionBody, UncoveredKernelBody
}
