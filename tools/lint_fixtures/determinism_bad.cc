// Golden violation for the determinism rule: system randomness and
// wall-clock reads in solver/kernel code make fits irreproducible. Every
// construct below must be flagged.
#include <cstdlib>
#include <ctime>
#include <random>

double NondeterministicInit() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  std::random_device entropy;
  return static_cast<double>(rand()) + static_cast<double>(entropy());
}
