// Golden fixture "test" that covers only two of the three bodies declared
// by kernel_coverage_kernels.h — the kernel-coverage rule must flag the
// missing UncoveredKernel reference. (The name is deliberately absent
// here; only its prefix appears, which must not count as coverage.)
void CoverageTestMissing() {
  // CoveredKernelBody, CoveredReductionBody
}
