// Golden clean fixture for the avx2-confinement rule: scalar code that
// talks about AVX2 in comments (allowed) without emitting any of it.
#include <cstddef>

// The _mm256_* intrinsic family is discussed here in prose only.
double SumLanesScalar(const double* p, size_t n) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += p[i];
  return total;
}
