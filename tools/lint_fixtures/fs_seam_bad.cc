// Golden violation for the fs-seam rule: direct file I/O in src/ outside
// src/util/ bypasses the FileSystem seam (no fault injection, no crash
// matrix). Every construct below must be flagged.
#include <fstream>

#include <string>

bool ReadConfigBypassingTheSeam(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  out->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return true;
}

bool TouchWithCStdio(const char* path) {
  FILE* f = fopen(path, "w");
  if (f == nullptr) return false;
  fclose(f);
  return true;
}
