// Golden fixture header for the kernel-coverage rule: a miniature
// kernels.h declaring three bodies. kernel_coverage_test_full.cc
// references all three; kernel_coverage_test_missing.cc omits
// UncoveredKernelBody and must be flagged.
#ifndef TRICLUST_TOOLS_LINT_FIXTURES_KERNEL_COVERAGE_KERNELS_H_
#define TRICLUST_TOOLS_LINT_FIXTURES_KERNEL_COVERAGE_KERNELS_H_

#include <cstddef>

void CoveredKernelBody(const double* x, double* y, size_t n);
double CoveredReductionBody(const double* x, size_t n);
void UncoveredKernelBody(const double* x, double* y, size_t n);

#endif  // TRICLUST_TOOLS_LINT_FIXTURES_KERNEL_COVERAGE_KERNELS_H_
