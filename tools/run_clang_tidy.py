#!/usr/bin/env python3
"""clang-tidy ratchet runner for the triclust repo.

Runs clang-tidy (profile: the repo's .clang-tidy) over every repo TU in
the CMake compilation database, aggregates diagnostics per check, and
compares against the frozen per-check debt in
tools/clang_tidy_baseline.json:

  count > baseline  ->  NEW violations: print them and fail (exit 1)
  count = baseline  ->  ok
  count < baseline  ->  ok, but prints a tightening hint; run
                        --update-baseline to lock in the progress

Diagnostics are deduplicated by (file, line, check) so a header warning
seen from ten TUs counts once. A check never mentioned by the baseline
has budget zero — enabling a new check in .clang-tidy ratchets it at
zero debt automatically.

Usage:
  run_clang_tidy.py --build-dir build [--repo-root .] [--jobs N]
  run_clang_tidy.py --update-baseline   # rewrite baseline to current
  run_clang_tidy.py --self-test         # ratchet logic on canned output

--self-test needs no clang-tidy binary (it feeds canned diagnostics to
the parser and ratchet); it is registered as a ctest so the ratchet
logic itself cannot rot. The real run needs clang-tidy and the compile
database (cmake -DCMAKE_EXPORT_COMPILE_COMMANDS=ON, the default here).
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

DIAG_RE = re.compile(
    r'^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+'
    r'(?:warning|error):\s+(?P<msg>.*?)\s+\[(?P<checks>[\w.,-]+)\]$')


def parse_diagnostics(output, repo_root):
    """Extracts unique (path, line, check, message) tuples from clang-tidy
    stdout. Dedup key is (path, line, check): the same header diagnostic
    surfaces once per including TU."""
    seen = {}
    for raw in output.splitlines():
        m = DIAG_RE.match(raw.strip())
        if not m:
            continue
        path = os.path.normpath(m.group("path"))
        if os.path.isabs(path):
            try:
                path = os.path.relpath(path, repo_root)
            except ValueError:
                pass
        # A diagnostic may cite several checks ("a,b"); attribute to the
        # first (primary) one.
        check = m.group("checks").split(",")[0]
        key = (path, int(m.group("line")), check)
        seen.setdefault(key, m.group("msg"))
    return [(p, l, c, msg) for (p, l, c), msg in sorted(seen.items())]


def count_by_check(diagnostics):
    counts = {}
    for _, _, check, _ in diagnostics:
        counts[check] = counts.get(check, 0) + 1
    return counts


def load_baseline(path):
    with open(path) as f:
        data = json.load(f)
    return data.get("checks", {})


def ratchet(diagnostics, baseline):
    """Returns (failures, tighten) — failures maps check -> list of
    diagnostics for checks over budget; tighten maps check -> (count,
    budget) for checks now under budget."""
    counts = count_by_check(diagnostics)
    failures = {}
    tighten = {}
    for check, count in sorted(counts.items()):
        budget = baseline.get(check, 0)
        if count > budget:
            failures[check] = [d for d in diagnostics if d[2] == check]
        elif count < budget:
            tighten[check] = (count, budget)
    for check, budget in sorted(baseline.items()):
        if budget > 0 and check not in counts:
            tighten[check] = (0, budget)
    return failures, tighten


def repo_translation_units(build_dir, repo_root):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.exit(f"error: {db_path} not found — configure CMake first "
                 "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)")
    with open(db_path) as f:
        db = json.load(f)
    root = os.path.realpath(repo_root)
    files = []
    for entry in db:
        path = os.path.realpath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        if path.startswith(root + os.sep) and "/tools/" not in path:
            files.append(path)
    return sorted(set(files))


def run_clang_tidy(binary, build_dir, files, jobs):
    def one(path):
        proc = subprocess.run(
            [binary, "-p", build_dir, "--quiet", path],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
        return proc.stdout
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        return "\n".join(pool.map(one, files))


# --- self-test ---------------------------------------------------------------

CANNED_OUTPUT = """\
/repo/src/util/fs.cc:42:7: warning: use after move [bugprone-use-after-move]
/repo/src/util/fs.h:10:3: warning: unused using [misc-unused-using-decls]
/repo/src/util/fs.h:10:3: warning: unused using [misc-unused-using-decls]
/repo/src/core/online.cc:7:1: warning: redundant expr [misc-redundant-expression,-warnings-as-errors]
12 warnings generated.
Suppressed 11 warnings (11 in non-user code).
"""


def self_test():
    failures = []

    def expect(label, cond):
        if not cond:
            failures.append(label)

    diags = parse_diagnostics(CANNED_OUTPUT, "/repo")
    counts = count_by_check(diags)
    # The duplicated header diagnostic must collapse; the trailing
    # summary/suppression lines must not parse; multi-check brackets
    # attribute to the primary check.
    expect("parse: three unique diagnostics", len(diags) == 3)
    expect("parse: counts",
           counts == {"bugprone-use-after-move": 1,
                      "misc-unused-using-decls": 1,
                      "misc-redundant-expression": 1})
    expect("parse: relative paths",
           all(p.startswith("src/") for p, _, _, _ in diags))

    # Empty baseline: every check is over its zero budget.
    over, tighten = ratchet(diags, {})
    expect("ratchet: zero baseline fails all three",
           set(over) == set(counts) and not tighten)

    # Exact baseline: green.
    over, tighten = ratchet(diags, dict(counts))
    expect("ratchet: matching baseline passes", not over and not tighten)

    # Loose baseline: green plus a tightening hint, including for a
    # budgeted check that no longer fires at all.
    loose = dict(counts)
    loose["bugprone-use-after-move"] = 5
    loose["performance-move-const-arg"] = 2
    over, tighten = ratchet(diags, loose)
    expect("ratchet: loose baseline passes", not over)
    expect("ratchet: tighten hints",
           tighten == {"bugprone-use-after-move": (1, 5),
                       "performance-move-const-arg": (0, 2)})

    # Regression beyond budget still fails.
    tight = dict(counts)
    tight["misc-unused-using-decls"] = 0
    over, _ = ratchet(diags, tight)
    expect("ratchet: over-budget check fails",
           set(over) == {"misc-unused-using-decls"})

    if failures:
        print("run_clang_tidy self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print("run_clang_tidy self-test OK: parsing, dedup, and ratchet "
          "compare behave.")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="clang-tidy ratchet for triclust")
    parser.add_argument("--repo-root",
                        default=os.path.dirname(
                            os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--build-dir", default=None,
                        help="CMake build dir with compile_commands.json "
                             "(default: <repo-root>/build)")
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite tools/clang_tidy_baseline.json with "
                             "the current per-check counts")
    parser.add_argument("--self-test", action="store_true",
                        help="exercise the parser and ratchet on canned "
                             "output (no clang-tidy needed)")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    if shutil.which(args.clang_tidy) is None:
        sys.exit(f"error: {args.clang_tidy} not found — install clang-tidy "
                 "or use --clang-tidy; ctest's ratchet self-test covers "
                 "the compare logic without it")

    build_dir = args.build_dir or os.path.join(args.repo_root, "build")
    baseline_path = os.path.join(args.repo_root, "tools",
                                 "clang_tidy_baseline.json")
    files = repo_translation_units(build_dir, args.repo_root)
    print(f"clang-tidy over {len(files)} TUs "
          f"({args.jobs} jobs, profile .clang-tidy)...")
    output = run_clang_tidy(args.clang_tidy, build_dir, files, args.jobs)
    diagnostics = parse_diagnostics(output, args.repo_root)

    if args.update_baseline:
        with open(baseline_path) as f:
            data = json.load(f)
        data["checks"] = count_by_check(diagnostics)
        with open(baseline_path, "w") as f:
            json.dump(data, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline rewritten: {len(diagnostics)} diagnostic(s) "
              f"across {len(data['checks'])} check(s)")
        return 0

    failures, tighten = ratchet(diagnostics, load_baseline(baseline_path))
    for check, (count, budget) in sorted(tighten.items()):
        print(f"note: {check}: {count} < baseline {budget} — debt paid; "
              "run --update-baseline to lock it in")
    if failures:
        print("\nNEW clang-tidy violations over the frozen baseline:")
        for check, diags in sorted(failures.items()):
            budget = load_baseline(baseline_path).get(check, 0)
            print(f"\n  {check}: {len(diags)} found, budget {budget}")
            for path, line, _, msg in diags:
                print(f"    {path}:{line}: {msg}")
        print("\nFix the new findings (preferred), waive with NOLINT and "
              "a reason, or — for genuinely pre-existing debt — freeze "
              "them via --update-baseline in a dedicated commit.")
        return 1
    print(f"clang-tidy ratchet OK: {len(diagnostics)} diagnostic(s), "
          "none over baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
