#!/usr/bin/env python3
"""Fails when a repo markdown file contains a broken relative link.

Scans every tracked *.md file, extracts inline links ``[text](target)``,
and verifies that each relative target (optionally with a #fragment)
exists on disk. External schemes (http/https/mailto) and pure-fragment
links are skipped. Used by the CI docs job; run locally as
``python3 tools/check_markdown_links.py`` from anywhere in the repo.
"""

import os
import re
import subprocess
import sys

# Inline markdown link whose target does not start with a scheme or '#'.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def repo_root() -> str:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, check=True)
    return out.stdout.strip()


def markdown_files(root: str):
    # Cached + untracked-but-not-ignored, so new docs are checked before
    # they are ever committed.
    out = subprocess.run(
        ["git", "ls-files", "-c", "-o", "--exclude-standard",
         "*.md", "**/*.md"],
        capture_output=True, text=True, check=True, cwd=root)
    return sorted({line for line in out.stdout.splitlines() if line})


def main() -> int:
    root = repo_root()
    broken = []
    for md in markdown_files(root):
        md_path = os.path.join(root, md)
        # Link syntax is ASCII; don't let a stray non-UTF-8 byte elsewhere
        # in a file turn the check into a decode traceback.
        with open(md_path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), path))
            if not os.path.exists(resolved):
                line = text.count("\n", 0, match.start()) + 1
                broken.append(f"{md}:{line}: broken link -> {target}")
    for entry in broken:
        print(entry)
    if broken:
        print(f"{len(broken)} broken relative link(s)")
        return 1
    print("all relative markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
