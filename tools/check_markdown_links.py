#!/usr/bin/env python3
"""Fails when a repo markdown file contains a broken relative link.

Scans every tracked *.md file, extracts inline links ``[text](target)``,
and verifies that each relative target (optionally with a #fragment)
exists on disk. External schemes (http/https/mailto) and pure-fragment
links are skipped.

Additionally guards the normative specs in docs/:

* docs/FORMATS.md must keep specifying the checkpoint integrity trailer
  (the ``triclust-crc32`` line format 2 stores depend on) — code
  references "FORMATS.md §4" and an edit that drops the section would
  orphan them silently.
* docs/BENCHMARK.md must keep documenting the aggregated report schema
  (``triclust-bench-report/1``) and the baseline-update workflow —
  tools/bench_runner.py and tools/bench_gate.py implement that contract
  and their consumers depend on the doc staying authoritative.

Used by the CI docs job; run locally as
``python3 tools/check_markdown_links.py`` from anywhere in the repo.
"""

import os
import re
import subprocess
import sys

# Inline markdown link whose target does not start with a scheme or '#'.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def repo_root() -> str:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, check=True)
    return out.stdout.strip()


def markdown_files(root: str):
    # Cached + untracked-but-not-ignored, so new docs are checked before
    # they are ever committed.
    out = subprocess.run(
        ["git", "ls-files", "-c", "-o", "--exclude-standard",
         "*.md", "**/*.md"],
        capture_output=True, text=True, check=True, cwd=root)
    return sorted({line for line in out.stdout.splitlines() if line})


# docs/FORMATS.md must keep specifying the integrity trailer; each entry
# is (required substring, what its absence means).
FORMATS_SPEC = "docs/FORMATS.md"
FORMATS_REQUIRED = (
    ("## 4. Integrity trailer",
     "the integrity-trailer section (referenced by code as §4) is gone"),
    ("triclust-crc32",
     "the trailer tag the store writes is no longer documented"),
    ("CRC-32",
     "the checksum algorithm is no longer named"),
    ("triclust-campaign-store 2",
     "the checksummed manifest format 2 is no longer documented"),
)


# docs/BENCHMARK.md must keep documenting the report schema and the
# baseline workflow the harness tools implement.
BENCHMARK_SPEC = "docs/BENCHMARK.md"
BENCHMARK_REQUIRED = (
    ("## Report schema",
     "the aggregated-report schema section is gone"),
    ("triclust-bench-report/1",
     "the report schema version tag is no longer documented"),
    ("triclust-bench/1",
     "the per-run schema the bench binaries emit is no longer named"),
    ("--update-baseline",
     "the baseline-update workflow is no longer documented"),
    ("ci95_half",
     "the confidence-interval statistic consumers read is undocumented"),
)


def check_required_text(root: str, rel_path: str, required, kind: str):
    """Returns problem strings when a normative doc lost required text."""
    path = os.path.join(root, rel_path)
    if not os.path.exists(path):
        return [f"{rel_path}: missing ({kind})"]
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    return [
        f"{rel_path}: missing required text {token!r} ({why})"
        for token, why in required if token not in text
    ]


def main() -> int:
    root = repo_root()
    broken = check_required_text(
        root, FORMATS_SPEC, FORMATS_REQUIRED, "normative format spec")
    broken += check_required_text(
        root, BENCHMARK_SPEC, BENCHMARK_REQUIRED, "normative bench guide")
    for md in markdown_files(root):
        md_path = os.path.join(root, md)
        # Link syntax is ASCII; don't let a stray non-UTF-8 byte elsewhere
        # in a file turn the check into a decode traceback.
        with open(md_path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), path))
            if not os.path.exists(resolved):
                line = text.count("\n", 0, match.start()) + 1
                broken.append(f"{md}:{line}: broken link -> {target}")
    for entry in broken:
        print(entry)
    if broken:
        print(f"{len(broken)} doc problem(s)")
        return 1
    print("all relative markdown links resolve; "
          "FORMATS.md trailer spec and BENCHMARK.md schema spec present")
    return 0


if __name__ == "__main__":
    sys.exit(main())
