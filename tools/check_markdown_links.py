#!/usr/bin/env python3
"""Fails when a repo markdown file contains a broken relative link.

Scans every tracked *.md file, extracts inline links ``[text](target)``,
and verifies that each relative target (optionally with a #fragment)
exists on disk. External schemes (http/https/mailto) and pure-fragment
links are skipped.

Additionally guards docs/FORMATS.md as the normative format spec: the
file must keep specifying the checkpoint integrity trailer (the
``triclust-crc32`` line format 2 stores depend on) — code references
"FORMATS.md §4" and an edit that drops the section would orphan them
silently.

Used by the CI docs job; run locally as
``python3 tools/check_markdown_links.py`` from anywhere in the repo.
"""

import os
import re
import subprocess
import sys

# Inline markdown link whose target does not start with a scheme or '#'.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def repo_root() -> str:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, check=True)
    return out.stdout.strip()


def markdown_files(root: str):
    # Cached + untracked-but-not-ignored, so new docs are checked before
    # they are ever committed.
    out = subprocess.run(
        ["git", "ls-files", "-c", "-o", "--exclude-standard",
         "*.md", "**/*.md"],
        capture_output=True, text=True, check=True, cwd=root)
    return sorted({line for line in out.stdout.splitlines() if line})


# docs/FORMATS.md must keep specifying the integrity trailer; each entry
# is (required substring, what its absence means).
FORMATS_SPEC = "docs/FORMATS.md"
FORMATS_REQUIRED = (
    ("## 4. Integrity trailer",
     "the integrity-trailer section (referenced by code as §4) is gone"),
    ("triclust-crc32",
     "the trailer tag the store writes is no longer documented"),
    ("CRC-32",
     "the checksum algorithm is no longer named"),
    ("triclust-campaign-store 2",
     "the checksummed manifest format 2 is no longer documented"),
)


def check_formats_spec(root: str):
    """Returns problem strings when FORMATS.md lost the trailer spec."""
    path = os.path.join(root, FORMATS_SPEC)
    if not os.path.exists(path):
        return [f"{FORMATS_SPEC}: missing (normative format spec)"]
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    return [
        f"{FORMATS_SPEC}: missing required text {token!r} ({why})"
        for token, why in FORMATS_REQUIRED if token not in text
    ]


def main() -> int:
    root = repo_root()
    broken = check_formats_spec(root)
    for md in markdown_files(root):
        md_path = os.path.join(root, md)
        # Link syntax is ASCII; don't let a stray non-UTF-8 byte elsewhere
        # in a file turn the check into a decode traceback.
        with open(md_path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), path))
            if not os.path.exists(resolved):
                line = text.count("\n", 0, match.start()) + 1
                broken.append(f"{md}:{line}: broken link -> {target}")
    for entry in broken:
        print(entry)
    if broken:
        print(f"{len(broken)} doc problem(s)")
        return 1
    print("all relative markdown links resolve; "
          "FORMATS.md trailer spec present")
    return 0


if __name__ == "__main__":
    sys.exit(main())
