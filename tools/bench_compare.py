#!/usr/bin/env python3
"""Prints a speedup table for two benchmark JSON artifacts.

Accepts either per-run JSON (classic google-benchmark output, or the
``triclust-bench/1`` shim documented in ``bench/bench_flags.h``) or an
aggregated ``triclust-bench-report/1`` report written by
``tools/bench_runner.py`` — in the aggregated case each scenario's mean
wall time is compared. The two files may use different formats.

Typical use is an A/B of the kernel-dispatch layer: run
``bench/bench_kernels`` once under ``TRICLUST_FORCE_SCALAR=1`` and once
dispatched, each with ``--benchmark_format=json``, then::

    python3 tools/bench_compare.py scalar.json dispatched.json

Every benchmark present in both files is listed with its baseline and
candidate wall time and the speedup (baseline / candidate, so > 1 means the
candidate is faster). Benchmarks present in only one file are reported and
otherwise ignored.

``--fail-above PCT`` turns the script into a regression gate: exit non-zero
when any shared benchmark REGRESSED by more than PCT percent (candidate
slower than baseline), printing the offenders. The CI bench-smoke job runs
it informationally (threshold high enough to only catch pathological
regressions on shared runners).

NOTE: for commit-over-commit regression gating, prefer
``tools/bench_gate.py`` — it compares against a checked-in baseline with a
noise-aware (confidence-interval) rule and per-scenario thresholds. This
script remains for quick two-artifact A/B speedup tables.
"""

import argparse
import json
import math
import sys

REPORT_SCHEMA = "triclust-bench-report/1"


def load_benchmarks(path):
    """Returns {name: real_time_ns}.

    Per-run JSON contributes its non-aggregate entries (aggregate rows —
    mean/median/stddev of --benchmark_repetitions — are skipped so repeated
    runs compare consistently); an aggregated runner report contributes
    each scenario's mean under its ``binary/name`` key.
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    if doc.get("schema") == REPORT_SCHEMA:
        for scenario in doc.get("scenarios", []):
            # Runner reports are normalized to milliseconds.
            out[scenario["key"]] = scenario["real_time"]["mean"] * 1e6
        return out
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        time = float(bench["real_time"])
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            raise ValueError(f"{path}: unknown time_unit {unit!r} for {name}")
        # A per-run file with in-process repetitions repeats names; keep the
        # fastest sample, matching google-benchmark's reporting convention.
        if name not in out or time * scale < out[name]:
            out[name] = time * scale
    return out


def format_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.3f} us"
    return f"{ns:.1f} ns"


def main():
    parser = argparse.ArgumentParser(
        description="Speedup table for two google-benchmark JSON files.")
    parser.add_argument("baseline", help="baseline JSON (e.g. force-scalar)")
    parser.add_argument("candidate", help="candidate JSON (e.g. dispatched)")
    parser.add_argument(
        "--fail-above", type=float, default=None, metavar="PCT",
        help="exit 1 when any benchmark regresses by more than PCT percent")
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    cand = load_benchmarks(args.candidate)

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if not shared:
        print("error: no benchmarks in common", file=sys.stderr)
        return 2

    name_width = max(len(name) for name in shared)
    print(f"{'benchmark':<{name_width}}  {'baseline':>12}  "
          f"{'candidate':>12}  {'speedup':>8}")
    regressions = []
    log_sum = 0.0
    for name in shared:
        speedup = base[name] / cand[name]
        log_sum += math.log(speedup)
        marker = ""
        if args.fail_above is not None:
            regress_pct = (cand[name] / base[name] - 1.0) * 100.0
            if regress_pct > args.fail_above:
                regressions.append((name, regress_pct))
                marker = "  REGRESSED"
        print(f"{name:<{name_width}}  {format_ns(base[name]):>12}  "
              f"{format_ns(cand[name]):>12}  {speedup:>7.2f}x{marker}")
    geomean = math.exp(log_sum / len(shared))
    print(f"{'geomean':<{name_width}}  {'':>12}  {'':>12}  {geomean:>7.2f}x")

    for name in only_base:
        print(f"note: only in baseline: {name}", file=sys.stderr)
    for name in only_cand:
        print(f"note: only in candidate: {name}", file=sys.stderr)

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.fail_above:.1f}%:", file=sys.stderr)
        for name, pct in regressions:
            print(f"  {name}: +{pct:.1f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
