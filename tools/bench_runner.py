#!/usr/bin/env python3
"""Statistical benchmark runner: repetitions, aggregation, one report.

Discovers the ``bench_*`` executables under ``<build-dir>/bench``, runs any
subset of them for N process-level repetitions (plus discarded warmup runs),
parses the per-run JSON each binary emits (the ``triclust-bench/1`` contract
documented in ``bench/bench_flags.h``, or classic google-benchmark JSON for
``bench_kernels``), and aggregates every scenario's wall time and counters
into a single schema-versioned report::

    python3 tools/bench_runner.py --build-dir build --profile validate \
        --out bench_report.json

Statistics per (binary, scenario, metric): mean, sample standard deviation,
min, max, and the half-width of the 95% confidence interval of the mean
(Student's t, two-sided, df = n-1). With one sample the stddev and CI are
reported as 0 — a single run carries no spread information.

Profiles bundle the defaults for the two supported environments:

* ``validate`` — shrunken work scale (``--benchmark_min_time=0.01x``),
  3 repetitions, 0 warmup. Exercises every sweep structurally; timings are
  NOT meaningful performance numbers. This is what CI runs.
* ``metal`` — full work scale (``1x``), 5 repetitions, 1 warmup. For quiet,
  dedicated hardware; this is the only profile whose numbers are worth
  comparing across commits. See docs/BENCHMARK.md.

The aggregated report (schema ``triclust-bench-report/1``) is consumed by
``tools/bench_gate.py`` (regression gating against a checked-in baseline)
and ``tools/bench_compare.py`` (A/B speedup tables). ``--csv`` and
``--html`` additionally write flat per-metric tables for spreadsheets and
quick eyeballing.

``--self-test`` runs the built-in unit tests on canned JSON (no build tree
needed); it is registered with ctest as ``bench_runner_selftest``.
"""

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile

REPORT_SCHEMA = "triclust-bench-report/1"
RUN_SCHEMA = "triclust-bench/1"

# Two-sided 95% critical values of Student's t by degrees of freedom.
# Hardcoded because the toolchain image has no scipy; the asymptotic 1.96
# is used beyond the table.
T_TABLE_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000,
    120: 1.980,
}

# Keys of a per-run benchmark entry that are structural, not counters.
# family_index / per_family_instance_index / threads come from classic
# google-benchmark output (bench_kernels).
NON_COUNTER_KEYS = frozenset({
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "iterations", "real_time", "cpu_time", "time_unit", "threads",
    "family_index", "per_family_instance_index",
})

TIME_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}

PROFILES = {
    "validate": {"min_time": "0.01x", "repetitions": 3, "warmup": 0},
    "metal": {"min_time": "1x", "repetitions": 5, "warmup": 1},
}


def t_critical_95(df):
    """Two-sided 95% t critical value for df degrees of freedom."""
    if df <= 0:
        return 0.0
    if df in T_TABLE_95:
        return T_TABLE_95[df]
    smaller = [d for d in T_TABLE_95 if d < df]
    if len(smaller) == len(T_TABLE_95):  # beyond the table
        return 1.96
    # Between table rows: use the next-smaller df (conservative: wider CI).
    return T_TABLE_95[max(smaller)] if smaller else T_TABLE_95[1]


def summarize(values):
    """Mean/stddev/min/max/ci95_half/n for a list of samples.

    Sample standard deviation (n-1 denominator); ci95_half is the half-width
    of the 95% confidence interval of the mean. Both are 0 for n < 2.
    """
    n = len(values)
    if n == 0:
        raise ValueError("summarize() needs at least one sample")
    mean = sum(values) / n
    if n < 2:
        return {"mean": mean, "stddev": 0.0, "min": values[0],
                "max": values[0], "ci95_half": 0.0, "n": n}
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    stddev = math.sqrt(var)
    ci95_half = t_critical_95(n - 1) * stddev / math.sqrt(n)
    return {"mean": mean, "stddev": stddev, "min": min(values),
            "max": max(values), "ci95_half": ci95_half, "n": n}


def parse_run_doc(doc, path="<doc>"):
    """Extracts [(name, real_time_ms, {counter: value})] from one run JSON.

    Accepts both the triclust-bench/1 shim output and classic
    google-benchmark JSON; aggregate rows (run_type == "aggregate") are
    skipped — statistics are exclusively this runner's job.
    """
    samples = []
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        unit = bench.get("time_unit", "ns")
        scale = TIME_UNIT_TO_MS.get(unit)
        if scale is None:
            raise ValueError(
                f"{path}: unknown time_unit {unit!r} for {bench.get('name')}")
        counters = {}
        for key, value in bench.items():
            if key in NON_COUNTER_KEYS:
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if not math.isfinite(value):
                    raise ValueError(
                        f"{path}: non-finite counter {key!r} in "
                        f"{bench.get('name')} — the bench binary must not "
                        "emit NaN/inf (see bench/bench_flags.h)")
                counters[key] = float(value)
        samples.append(
            (bench["name"], float(bench["real_time"]) * scale, counters))
    return samples


def discover_binaries(build_dir):
    """Returns sorted names of bench_* executables in <build_dir>/bench."""
    bench_dir = os.path.join(build_dir, "bench")
    if not os.path.isdir(bench_dir):
        raise FileNotFoundError(
            f"{bench_dir}: not a directory (build the 'benchmarks' targets "
            "first: cmake --build build --target all)")
    names = []
    for entry in sorted(os.listdir(bench_dir)):
        path = os.path.join(bench_dir, entry)
        if (entry.startswith("bench_") and "." not in entry
                and os.path.isfile(path) and os.access(path, os.X_OK)):
            names.append(entry)
    return names


def run_binary_once(path, min_time, bench_filter, extra_args, log_fh):
    """Runs one binary, returns the parsed run JSON document.

    Binaries that reject the fractional ``0.01x`` min-time form (classic
    google-benchmark wants a plain double in seconds) are retried once with
    the ``x`` suffix stripped.
    """
    with tempfile.NamedTemporaryFile(
            mode="r", suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    try:
        def attempt(min_time_value):
            args = [path, f"--benchmark_min_time={min_time_value}",
                    f"--benchmark_out={out_path}"]
            if bench_filter:
                args.append(f"--benchmark_filter={bench_filter}")
            args.extend(extra_args)
            return subprocess.run(
                args, stdout=log_fh, stderr=subprocess.STDOUT, check=False)

        proc = attempt(min_time)
        if proc.returncode != 0 and min_time.endswith("x"):
            proc = attempt(min_time[:-1])
        if proc.returncode != 0:
            raise RuntimeError(
                f"{os.path.basename(path)} exited with {proc.returncode}")
        with open(out_path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    finally:
        os.unlink(out_path)


def aggregate(per_binary_runs):
    """Builds the report body from {binary: (context, [run_samples...])}.

    ``run_samples`` is a list (one element per repetition) of the
    parse_run_doc() output. Returns (binaries, scenarios) — scenarios sorted
    by key so the report is deterministic byte-for-byte given equal inputs.
    """
    binaries = {}
    scenarios = []
    for binary in sorted(per_binary_runs):
        context, runs = per_binary_runs[binary]
        binaries[binary] = context
        # Pool samples per scenario name across all repetitions (process
        # level and any in-process --benchmark_repetitions entries alike).
        times = {}
        counters = {}
        for run in runs:
            for name, time_ms, run_counters in run:
                times.setdefault(name, []).append(time_ms)
                for key, value in run_counters.items():
                    counters.setdefault(name, {}).setdefault(
                        key, []).append(value)
        for name in sorted(times):
            scenario = {
                "binary": binary,
                "name": name,
                "key": f"{binary}/{name}",
                "time_unit": "ms",
                "real_time": summarize(times[name]),
                "counters": {
                    key: summarize(values)
                    for key, values in sorted(counters.get(name, {}).items())
                },
            }
            scenarios.append(scenario)
    return binaries, scenarios


def flat_rows(report):
    """Yields one flat dict per (scenario, metric) for CSV/HTML output."""
    for scenario in report["scenarios"]:
        metrics = [("real_time_ms", scenario["real_time"])]
        metrics.extend(sorted(scenario["counters"].items()))
        for metric, stats in metrics:
            yield {
                "binary": scenario["binary"],
                "name": scenario["name"],
                "metric": metric,
                "n": stats["n"],
                "mean": stats["mean"],
                "stddev": stats["stddev"],
                "min": stats["min"],
                "max": stats["max"],
                "ci95_half": stats["ci95_half"],
            }


CSV_COLUMNS = ("binary", "name", "metric", "n", "mean", "stddev", "min",
               "max", "ci95_half")


def write_csv(report, path):
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(",".join(CSV_COLUMNS) + "\n")
        for row in flat_rows(report):
            fh.write(",".join(_csv_cell(row[c]) for c in CSV_COLUMNS) + "\n")


def _csv_cell(value):
    if isinstance(value, float):
        return repr(value)
    text = str(value)
    if any(ch in text for ch in ",\"\n"):
        text = '"' + text.replace('"', '""') + '"'
    return text


def write_html(report, path):
    """Minimal static HTML summary — one table, no external assets."""
    def esc(s):
        return (str(s).replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;"))

    rows = []
    for row in flat_rows(report):
        cells = [esc(row["binary"]), esc(row["name"]), esc(row["metric"]),
                 str(row["n"])]
        cells.extend(f"{row[c]:.4g}"
                     for c in ("mean", "stddev", "min", "max", "ci95_half"))
        rows.append("<tr><td>" + "</td><td>".join(cells) + "</td></tr>")
    html = (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>bench report ({esc(report.get('profile'))})</title>"
        "<style>body{font-family:monospace}table{border-collapse:collapse}"
        "td,th{border:1px solid #999;padding:2px 8px;text-align:right}"
        "td:nth-child(-n+3),th:nth-child(-n+3){text-align:left}</style>"
        "</head><body>"
        f"<h1>Benchmark report — profile {esc(report.get('profile'))}, "
        f"{report.get('repetitions')} repetitions</h1>"
        "<table><tr><th>binary</th><th>scenario</th><th>metric</th>"
        "<th>n</th><th>mean</th><th>stddev</th><th>min</th><th>max</th>"
        "<th>ci95&#189;</th></tr>"
        + "".join(rows) + "</table></body></html>\n")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(html)


def build_report(profile, min_time, repetitions, warmup, per_binary_runs,
                 failures):
    binaries, scenarios = aggregate(per_binary_runs)
    return {
        "schema": REPORT_SCHEMA,
        "profile": profile,
        "min_time": min_time,
        "repetitions": repetitions,
        "warmup": warmup,
        "binaries": binaries,
        "failures": sorted(failures),
        "scenarios": scenarios,
    }


def main():
    parser = argparse.ArgumentParser(
        description="Run bench_* binaries repeatedly and aggregate "
                    "statistics into one report (see docs/BENCHMARK.md).")
    parser.add_argument("binaries", nargs="*", metavar="BINARY",
                        help="bench_* names to run (default: all discovered)")
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    parser.add_argument("--profile", choices=sorted(PROFILES),
                        default="validate",
                        help="defaults bundle: validate (CI, shrunken work) "
                             "or metal (full scale, quiet hardware)")
    parser.add_argument("--repetitions", type=int, default=None,
                        help="process-level repetitions (overrides profile)")
    parser.add_argument("--warmup", type=int, default=None,
                        help="discarded warmup runs per binary "
                             "(overrides profile)")
    parser.add_argument("--min-time", default=None, metavar="FRACx",
                        help="--benchmark_min_time passed to every binary "
                             "(overrides profile)")
    parser.add_argument("--filter", default=None,
                        help="--benchmark_filter passed to every binary "
                             "(only bench_kernels selects on it; the shim "
                             "binaries ignore it)")
    parser.add_argument("--exclude", action="append", default=[],
                        metavar="BINARY", help="skip this binary (repeatable)")
    parser.add_argument("--out", default="bench_report.json",
                        help="aggregated JSON report path")
    parser.add_argument("--csv", default=None, help="also write a CSV table")
    parser.add_argument("--html", default=None,
                        help="also write an HTML summary")
    parser.add_argument("--log", default=None,
                        help="file for the binaries' console output "
                             "(default: discarded)")
    parser.add_argument("--list", action="store_true",
                        help="list discovered binaries and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run built-in unit tests and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    profile = PROFILES[args.profile]
    repetitions = (args.repetitions if args.repetitions is not None
                   else profile["repetitions"])
    warmup = args.warmup if args.warmup is not None else profile["warmup"]
    min_time = args.min_time if args.min_time is not None \
        else profile["min_time"]
    if repetitions < 1:
        parser.error("--repetitions must be >= 1")
    if warmup < 0:
        parser.error("--warmup must be >= 0")

    discovered = discover_binaries(args.build_dir)
    if args.list:
        print("\n".join(discovered))
        return 0
    selected = args.binaries or discovered
    unknown = sorted(set(selected) - set(discovered))
    if unknown:
        print(f"error: not found under {args.build_dir}/bench: "
              f"{', '.join(unknown)}", file=sys.stderr)
        return 2
    selected = [b for b in selected if b not in set(args.exclude)]
    if not selected:
        print("error: no binaries selected", file=sys.stderr)
        return 2

    log_fh = open(args.log, "w", encoding="utf-8") if args.log \
        else open(os.devnull, "w", encoding="utf-8")
    per_binary_runs = {}
    failures = []
    with log_fh:
        for binary in selected:
            path = os.path.join(args.build_dir, "bench", binary)
            context = None
            runs = []
            try:
                for rep in range(warmup + repetitions):
                    phase = "warmup" if rep < warmup else "rep"
                    index = rep if rep < warmup else rep - warmup
                    print(f"[bench_runner] {binary} {phase} {index + 1}",
                          flush=True)
                    doc = run_binary_once(path, min_time, args.filter, [],
                                          log_fh)
                    if rep < warmup:
                        continue
                    context = doc.get("context", {})
                    runs.append(parse_run_doc(doc, binary))
            except (RuntimeError, ValueError, json.JSONDecodeError) as err:
                print(f"[bench_runner] FAILED {binary}: {err}",
                      file=sys.stderr, flush=True)
                failures.append(binary)
                continue
            per_binary_runs[binary] = (context, runs)

    report = build_report(args.profile, min_time, repetitions, warmup,
                          per_binary_runs, failures)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    if args.csv:
        write_csv(report, args.csv)
    if args.html:
        write_html(report, args.html)

    n_scenarios = len(report["scenarios"])
    print(f"[bench_runner] wrote {args.out}: {n_scenarios} scenario(s) from "
          f"{len(per_binary_runs)} binarie(s), {repetitions} repetition(s)")
    if failures:
        print(f"[bench_runner] {len(failures)} binarie(s) failed: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------------
# Self-test: canned-JSON unit tests, no build tree required.

def _check(condition, label):
    if not condition:
        raise AssertionError(label)
    print(f"  ok: {label}")


def _approx(a, b, tol=1e-9):
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def _canned_run(names_times_counters, schema=RUN_SCHEMA, unit="ms"):
    return {
        "context": {"schema": schema, "executable": "bench_fake"},
        "benchmarks": [
            dict({"name": n, "run_type": "iteration", "iterations": 1,
                  "real_time": t, "cpu_time": t, "time_unit": unit}, **c)
            for n, t, c in names_times_counters
        ],
    }


def self_test():
    print("bench_runner self-test")

    # Statistics: worked example from docs/BENCHMARK.md.
    s = summarize([10.0, 12.0, 14.0])
    _check(_approx(s["mean"], 12.0), "mean of [10,12,14] is 12")
    _check(_approx(s["stddev"], 2.0), "sample stddev of [10,12,14] is 2")
    _check(_approx(s["ci95_half"], 4.303 * 2.0 / math.sqrt(3.0)),
           "ci95 half-width uses t(df=2)=4.303")
    _check(s["min"] == 10.0 and s["max"] == 14.0, "min/max")

    single = summarize([7.0])
    _check(single["stddev"] == 0.0 and single["ci95_half"] == 0.0,
           "n=1 reports zero spread")

    _check(t_critical_95(2) == 4.303, "t table exact hit")
    _check(t_critical_95(22) == 2.086, "t table between rows -> conservative")
    _check(t_critical_95(1000) == 1.96, "t table beyond rows -> 1.96")

    # Unit conversion and aggregate-row skipping.
    doc = _canned_run([("a/b", 2.0, {})], unit="s")
    doc["benchmarks"].append({"name": "a/b_mean", "run_type": "aggregate",
                              "real_time": 9.9, "time_unit": "s"})
    samples = parse_run_doc(doc)
    _check(len(samples) == 1, "aggregate rows are skipped")
    _check(_approx(samples[0][1], 2000.0), "seconds convert to ms")

    # Counter extraction ignores structural keys, keeps numerics.
    samples = parse_run_doc(_canned_run(
        [("x", 1.0, {"fits": 25.0, "threads": 8, "run_name": "x"})]))
    _check(samples[0][2] == {"fits": 25.0},
           "structural keys are not counters")

    # NaN counters must be rejected loudly.
    try:
        parse_run_doc(_canned_run([("x", 1.0, {"bad": float("nan")})]))
        raise AssertionError("NaN counter should raise")
    except ValueError:
        print("  ok: NaN counter raises ValueError")

    # Aggregation across repetitions, including in-process repetition rows.
    rep0 = parse_run_doc(_canned_run(
        [("s", 10.0, {"acc": 80.0}), ("s", 12.0, {"acc": 80.0})]))
    rep1 = parse_run_doc(_canned_run([("s", 14.0, {"acc": 80.0})]))
    binaries, scenarios = aggregate(
        {"bench_fake": ({"schema": RUN_SCHEMA}, [rep0, rep1])})
    _check(list(binaries) == ["bench_fake"], "context recorded per binary")
    _check(len(scenarios) == 1 and scenarios[0]["key"] == "bench_fake/s",
           "samples pool across repetitions under one key")
    _check(scenarios[0]["real_time"]["n"] == 3, "n counts all samples")
    _check(_approx(scenarios[0]["real_time"]["mean"], 12.0),
           "pooled mean")
    _check(_approx(scenarios[0]["counters"]["acc"]["stddev"], 0.0),
           "deterministic counter has zero variance")

    # Determinism: two binaries, scrambled insert order -> sorted output.
    _, scenarios = aggregate({
        "bench_z": ({}, [parse_run_doc(_canned_run([("n2", 1.0, {}),
                                                    ("n1", 1.0, {})]))]),
        "bench_a": ({}, [parse_run_doc(_canned_run([("m", 1.0, {})]))]),
    })
    _check([s["key"] for s in scenarios] ==
           ["bench_a/m", "bench_z/n1", "bench_z/n2"],
           "scenarios sorted by binary then name")

    # Report serialization round-trips and carries the schema tag.
    report = build_report("validate", "0.01x", 3, 0,
                          {"bench_fake": ({}, [rep0])}, [])
    _check(report["schema"] == REPORT_SCHEMA, "report schema tag")
    _check(json.loads(json.dumps(report)) == report,
           "report is JSON round-trippable")

    # CSV/HTML writers produce a row per metric.
    rows = list(flat_rows(report))
    _check([r["metric"] for r in rows] == ["real_time_ms", "acc"],
           "flat rows: real_time first, counters after")
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = os.path.join(tmp, "r.csv")
        html_path = os.path.join(tmp, "r.html")
        write_csv(report, csv_path)
        write_html(report, html_path)
        with open(csv_path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        _check(lines[0] == ",".join(CSV_COLUMNS) and len(lines) == 3,
               "csv header + one line per metric")
        with open(html_path, encoding="utf-8") as fh:
            html = fh.read()
        _check("bench_fake" in html and "<table>" in html,
               "html contains the scenario table")

    print("bench_runner self-test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
