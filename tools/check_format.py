#!/usr/bin/env python3
"""Changed-files-only clang-format check.

Collects the C++ files touched between a base ref and the working tree
(committed, staged, and unstaged alike) and runs
`clang-format --dry-run -Werror` with the repo .clang-format over them.
Only changed files are checked on purpose: the goal is that edits land
formatted, without a tree-wide reformat churning blame.

Exit status: 0 = formatted (or nothing changed), 1 = violations,
77 = skipped (no clang-format binary, or not a git checkout) — the same
skip convention as tools/check_negative_compile.py.

Usage:
  check_format.py [--base origin/main] [--repo-root .] [--clang-format BIN]
"""

import argparse
import os
import shutil
import subprocess
import sys

SKIP = 77
EXTENSIONS = (".cc", ".h")
# Deliberately-unformatted trees: lint/negative-compile fixtures keep
# whatever shape their seeded violation needs.
EXCLUDED_PREFIXES = ("tools/lint_fixtures/", "tools/ts_fixtures/")


def git(repo_root, *argv):
    proc = subprocess.run(["git", "-C", repo_root, *argv],
                          stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                          text=True)
    if proc.returncode != 0:
        raise RuntimeError(proc.stderr.strip())
    return proc.stdout


def changed_files(repo_root, base):
    """C++ files changed since merge-base(base, HEAD), plus any
    staged/unstaged edits."""
    merge_base = git(repo_root, "merge-base", base, "HEAD").strip()
    names = set()
    for diff_args in (["diff", "--name-only", "--diff-filter=ACMR",
                       merge_base, "HEAD"],
                      ["diff", "--name-only", "--diff-filter=ACMR", "HEAD"]):
        names.update(git(repo_root, *diff_args).splitlines())
    out = []
    for name in sorted(names):
        if not name.endswith(EXTENSIONS):
            continue
        if name.startswith(EXCLUDED_PREFIXES):
            continue
        path = os.path.join(repo_root, name)
        if os.path.exists(path):  # renamed-away files drop out
            out.append(name)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--base", default="origin/main",
                        help="ref to diff against (merge-base with HEAD)")
    parser.add_argument("--repo-root",
                        default=os.path.dirname(
                            os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--clang-format", default="clang-format")
    args = parser.parse_args()

    if shutil.which(args.clang_format) is None:
        print(f"SKIP: {args.clang_format} not found")
        return SKIP
    try:
        files = changed_files(args.repo_root, args.base)
    except RuntimeError as e:
        print(f"SKIP: cannot diff against {args.base}: {e}")
        return SKIP
    if not files:
        print("format check OK: no C++ files changed.")
        return 0

    print(f"clang-format --dry-run over {len(files)} changed file(s)...")
    proc = subprocess.run(
        [args.clang_format, "--dry-run", "-Werror", "--style=file",
         *files],
        cwd=args.repo_root, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        print(proc.stdout)
        print("format check FAILED — run:\n  clang-format -i "
              + " ".join(files))
        return 1
    print("format check OK.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
