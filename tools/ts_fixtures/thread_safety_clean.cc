// Clean thread-safety fixture: every access to the guarded counter holds
// the declared mutex. Must compile warning-free under
// -Wthread-safety -Werror=thread-safety; tools/check_negative_compile.py
// uses it both as the control for the seeded violation in
// thread_safety_bad.cc and as a probe for whether the active compiler
// carries the analysis at all.

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class GuardedCounter {
 public:
  void Increment() TRICLUST_EXCLUDES(mu_) {
    triclust::MutexLock lock(&mu_);
    ++value_;
  }

  int value() const TRICLUST_EXCLUDES(mu_) {
    triclust::MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable triclust::Mutex mu_;
  int value_ TRICLUST_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  GuardedCounter counter;
  counter.Increment();
  return counter.value() == 1 ? 0 : 1;
}
