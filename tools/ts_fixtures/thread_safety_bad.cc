// Seeded thread-safety violation: Increment() writes the guarded counter
// WITHOUT holding its declared mutex — the exact shape of bug the
// annotations exist to reject. tools/check_negative_compile.py asserts
// that compiling this TU with -Wthread-safety -Werror=thread-safety
// FAILS (and that the diagnostic names the analysis); if it ever
// compiles, the ratchet has gone soft and the check errors out.

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class GuardedCounter {
 public:
  void Increment() TRICLUST_EXCLUDES(mu_) {
    ++value_;  // BUG: guarded write, no lock held
  }

  int value() const TRICLUST_EXCLUDES(mu_) {
    triclust::MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable triclust::Mutex mu_;
  int value_ TRICLUST_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  GuardedCounter counter;
  counter.Increment();
  return counter.value() == 1 ? 0 : 1;
}
